//! The TCP front end: accept loop, routing, graceful drain.
//!
//! One thread per connection (bounded in practice by the accept rate of
//! a local batch service), keep-alive HTTP/1.1, all heavy work handed
//! to the [`Dispatcher`]'s bounded queue so the connection count never
//! translates into unbounded simulation concurrency.
//!
//! Shutdown is cooperative and lossless for admitted work: a SIGTERM /
//! ctrl-c (or a [`ShutdownHandle`]) stops the accept loop, the
//! dispatcher queue closes (new submissions → 503), workers finish
//! every job already admitted, idle connections observe the shutdown
//! flag at their next read timeout and close, and `run()` returns only
//! after every thread is joined.

use crate::api::JobRequest;
use crate::error::ServeError;
use crate::exec::{Endpoint, Executor};
use crate::http::{Limits, Request, RequestReader, Response};
use crate::metrics::{Route, ServerMetrics};
use crate::queue::{Dispatcher, JobState};
use cooprt_telemetry::{
    host_spans_chrome_json, parse_json, JsonWriter, LogLevel, Logger, RequestSpans, SloConfig,
    SpanRecorder, TraceMeta,
};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Read timeout on connection sockets; bounds how long an idle
/// keep-alive connection can outlive a drain request.
const READ_POLL: Duration = Duration::from_millis(250);

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Jobs the admission queue holds before rejecting with 429.
    pub queue_capacity: usize,
    /// Built scenes the scene cache retains.
    pub scene_cache_capacity: usize,
    /// Response bodies the result cache retains.
    pub result_cache_capacity: usize,
    /// HTTP input limits (header/body caps).
    pub limits: Limits,
    /// Deadline applied when a request names none.
    pub default_deadline: Duration,
    /// `Retry-After` seconds suggested on 429 responses.
    pub retry_after_secs: u64,
    /// Install SIGINT/SIGTERM handlers that trigger a graceful drain.
    pub handle_signals: bool,
    /// Record per-request host span trails (served at
    /// `GET /v1/spans/<id>` as Chrome trace JSON).
    pub request_spans: bool,
    /// Rolling-window SLO parameters for the latency tracker.
    pub slo: SloConfig,
    /// Structured logger threaded through the accept loop, dispatcher
    /// and executor. The default reads `COOPRT_LOG` from the
    /// environment; tests inject a buffer-sink logger here.
    pub logger: Logger,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 32,
            scene_cache_capacity: 8,
            result_cache_capacity: 64,
            limits: Limits::default(),
            default_deadline: Duration::from_secs(60),
            retry_after_secs: 1,
            handle_signals: false,
            request_spans: true,
            slo: SloConfig::default(),
            logger: Logger::from_env(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
#[derive(Debug)]
struct Shared {
    dispatcher: Dispatcher,
    metrics: ServerMetrics,
    limits: Limits,
    default_deadline: Duration,
    shutdown: AtomicBool,
    logger: Logger,
    spans_enabled: bool,
}

/// Requests a graceful drain from another thread.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Triggers the drain: stop accepting, finish admitted work, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Renders the `/metrics` snapshot out-of-band — including after
    /// [`Server::run`] has returned, which is how tests verify the
    /// final drained state.
    pub fn metrics_json(&self) -> String {
        self.shared
            .metrics
            .to_json(&self.shared.dispatcher, self.shared.dispatcher.executor())
    }

    /// Renders the Prometheus text exposition out-of-band (the same
    /// document `GET /metrics` serves under `Accept: text/plain`).
    pub fn metrics_prometheus(&self) -> String {
        self.shared
            .metrics
            .to_prometheus(&self.shared.dispatcher, self.shared.dispatcher.executor())
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    handle_signals: bool,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let executor = Arc::new(Executor::new(
            config.scene_cache_capacity,
            config.result_cache_capacity,
        ));
        let dispatcher = Dispatcher::new_with(
            executor,
            config.workers,
            config.queue_capacity,
            config.retry_after_secs,
            config.logger.clone(),
        );
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                dispatcher,
                metrics: ServerMetrics::with_slo(config.slo),
                limits: config.limits,
                default_deadline: config.default_deadline,
                shutdown: AtomicBool::new(false),
                logger: config.logger.clone(),
                spans_enabled: config.request_spans,
            }),
            handle_signals: config.handle_signals,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can trigger a graceful drain from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until a drain is requested, then drains and returns.
    ///
    /// On return: every admitted job has finished, every connection
    /// thread has been joined, and the final metrics snapshot is
    /// available via the value returned from [`Server::bind`]'s shared
    /// state (exposed to tests through [`ShutdownHandle`]).
    pub fn run(self) -> std::io::Result<()> {
        if self.handle_signals {
            signals::install();
        }
        let addr = self.local_addr()?;
        self.shared
            .logger
            .log(LogLevel::Info, "serve::server", "serving", |f| {
                f.str("addr", addr.to_string())
                    .u64("workers", self.shared.dispatcher.workers_total() as u64)
                    .u64(
                        "queue_capacity",
                        self.shared.dispatcher.queue_capacity() as u64,
                    );
            });
        let connections: Mutex<Vec<thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        while !(self.shared.shutdown.load(Ordering::SeqCst)
            || self.handle_signals && signals::triggered())
        {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    let handle = thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || handle_connection(stream, &shared))
                        .expect("spawn connection thread");
                    let mut conns = connections.lock().unwrap_or_else(|e| e.into_inner());
                    conns.push(handle);
                    // Opportunistically reap finished threads so a
                    // long-lived server doesn't accumulate handles.
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(e),
            }
        }
        // Drain: flag is observed by connection readers, the queue
        // closes (new submissions → 503), admitted jobs finish.
        self.shared
            .logger
            .log(LogLevel::Info, "serve::server", "draining", |f| {
                f.u64("queued", self.shared.dispatcher.queued() as u64);
            });
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.dispatcher.drain();
        for handle in connections.into_inner().unwrap_or_else(|e| e.into_inner()) {
            let _ = handle.join();
        }
        self.shared
            .logger
            .log(LogLevel::Info, "serve::server", "drained", |f| {
                f.u64(
                    "completed",
                    self.shared
                        .dispatcher
                        .counters()
                        .completed
                        .load(Ordering::Relaxed),
                );
            });
        Ok(())
    }
}

/// A connection socket that polls the shutdown flag: reads time out
/// every [`READ_POLL`] and report end-of-stream once a drain has been
/// requested, so idle keep-alive connections unwind promptly.
#[derive(Debug)]
struct PatientStream {
    stream: TcpStream,
    shared: Arc<Shared>,
}

impl Read for PatientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Serves one connection's keep-alive request loop.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "?".to_string());
    shared.logger.log(
        LogLevel::Debug,
        "serve::server",
        "connection accepted",
        |f| {
            f.str("peer", peer.as_str());
        },
    );
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = RequestReader::new(
        PatientStream {
            stream,
            shared: Arc::clone(shared),
        },
        shared.limits,
    );
    loop {
        let request = match reader.read_request() {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close (or drain) between requests
            Err(err) => {
                // Framing is unknown after a protocol error: respond
                // and close.
                shared
                    .logger
                    .log(LogLevel::Warn, "serve::server", "protocol error", |f| {
                        f.str("peer", peer.as_str()).str("code", err.code());
                    });
                let response = Response::from_error(&err);
                shared.metrics.count_response(response.status);
                if let Ok(sent) = response.write_to(&mut write_half) {
                    shared.metrics.count_bytes(reader.take_wire_bytes(), sent);
                }
                return;
            }
        };
        let started = Instant::now();
        let close = request.wants_close();
        let route = Route::of_path(&request.target);
        let response = match handle_request(shared, &request) {
            Ok(response) => response,
            Err(err) => Response::from_error(&err),
        };
        let status = response.status;
        let sent = response.write_to(&mut write_half);
        let latency_us = started.elapsed().as_micros() as u64;
        shared.metrics.observe_request(route, status, latency_us);
        shared.metrics.count_bytes(
            reader.take_wire_bytes(),
            sent.as_ref().copied().unwrap_or(0),
        );
        shared
            .logger
            .log(LogLevel::Info, "serve::server", "request", |f| {
                f.str("method", request.method.as_str())
                    .str("target", request.target.as_str())
                    .str("route", route.label())
                    .u64("status", u64::from(status))
                    .u64("latency_us", latency_us);
            });
        if sent.is_err() || close {
            return;
        }
    }
}

/// True when the client's `Accept` header (or a `format=prometheus`
/// query parameter) asks for the Prometheus text exposition instead of
/// the JSON snapshot on `GET /metrics`.
fn wants_prometheus(request: &Request) -> bool {
    if request
        .target
        .split_once('?')
        .is_some_and(|(_, q)| q.split('&').any(|p| p == "format=prometheus"))
    {
        return true;
    }
    request.header("accept").is_some_and(|accept| {
        let accept = accept.to_ascii_lowercase();
        accept.contains("text/plain") || accept.contains("openmetrics")
    })
}

/// Routes one parsed request to its handler.
fn handle_request(shared: &Arc<Shared>, request: &Request) -> Result<Response, ServeError> {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => Ok(healthz(shared)),
        ("GET", "/metrics") if wants_prometheus(request) => Ok(Response::prometheus(
            200,
            shared
                .metrics
                .to_prometheus(&shared.dispatcher, shared.dispatcher.executor()),
        )),
        ("GET", "/metrics") => Ok(Response::json(
            200,
            shared
                .metrics
                .to_json(&shared.dispatcher, shared.dispatcher.executor()),
        )),
        ("POST", "/v1/render") => submit_job(shared, Endpoint::Render, request),
        ("POST", "/v1/simulate") => submit_job(shared, Endpoint::Simulate, request),
        ("POST", "/v1/query") => submit_job(shared, Endpoint::Query, request),
        ("GET", path) if path.starts_with("/v1/jobs/") => job_status(shared, path),
        ("GET", path) if path.starts_with("/v1/spans/") => request_spans(shared, path),
        // Known routes under the wrong method get a 405 + Allow.
        (_, "/healthz") | (_, "/metrics") => Err(ServeError::MethodNotAllowed { allow: "GET" }),
        (_, "/v1/render") | (_, "/v1/simulate") | (_, "/v1/query") => {
            Err(ServeError::MethodNotAllowed { allow: "POST" })
        }
        (_, path) if path.starts_with("/v1/jobs/") || path.starts_with("/v1/spans/") => {
            Err(ServeError::MethodNotAllowed { allow: "GET" })
        }
        _ => Err(ServeError::UnknownRoute(request.target.clone())),
    }
}

fn healthz(shared: &Arc<Shared>) -> Response {
    let mut w = JsonWriter::new();
    w.begin_inline_object();
    w.field_str("status", "ok");
    w.field_bool("draining", shared.dispatcher.is_draining());
    w.end_object();
    Response::json(200, w.finish())
}

/// `POST /v1/render` and `POST /v1/simulate`: parse, admit, and either
/// wait (sync) or hand back the job id (async).
fn submit_job(
    shared: &Arc<Shared>,
    endpoint: Endpoint,
    request: &Request,
) -> Result<Response, ServeError> {
    let trail = if shared.spans_enabled {
        SpanRecorder::enabled()
    } else {
        SpanRecorder::disabled()
    };
    let parse_start = Instant::now();
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::BadRequest("body is not valid UTF-8".to_string()))?;
    let doc = parse_json(text).map_err(|e| ServeError::BadRequest(format!("invalid JSON: {e}")))?;
    let job = JobRequest::from_json(&doc)?;
    trail.record("parse", parse_start, Instant::now());
    let deadline = job
        .deadline_ms
        .map(Duration::from_millis)
        .unwrap_or(shared.default_deadline);
    let id = shared
        .dispatcher
        .submit_traced(endpoint, job.clone(), deadline, trail)?;
    if job.run_async {
        let mut w = JsonWriter::new();
        w.begin_inline_object();
        w.field_u64("id", id);
        w.field_str("state", "queued");
        w.end_object();
        return Ok(Response::json(202, w.finish()).with_header("X-Request-Id", id.to_string()));
    }
    let outcome = shared.dispatcher.wait(id)?;
    Ok(Response::json(200, outcome.body.as_ref().clone())
        .with_header("X-Request-Id", id.to_string())
        .with_header("X-Cache", if outcome.cached { "hit" } else { "miss" }))
}

/// `GET /v1/jobs/<id>`: poll an async job.
fn job_status(shared: &Arc<Shared>, path: &str) -> Result<Response, ServeError> {
    let id: u64 = path
        .strip_prefix("/v1/jobs/")
        .unwrap_or("")
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("invalid job id in '{path}'")))?;
    match shared.dispatcher.status(id)? {
        JobState::Done(outcome) => Ok(Response::json(200, outcome.body.as_ref().clone())
            .with_header("X-Request-Id", id.to_string())
            .with_header("X-Cache", if outcome.cached { "hit" } else { "miss" })),
        JobState::Failed(err) => Ok(Response::from_error(&err)),
        state => {
            let mut w = JsonWriter::new();
            w.begin_inline_object();
            w.field_u64("id", id);
            w.field_str("state", state.label());
            w.end_object();
            Ok(Response::json(200, w.finish()).with_header("X-Request-Id", id.to_string()))
        }
    }
}

/// `GET /v1/spans/<id>`: the request's host span trail as Chrome trace
/// JSON (loadable in Perfetto alongside the sim-time trace).
fn request_spans(shared: &Arc<Shared>, path: &str) -> Result<Response, ServeError> {
    let id: u64 = path
        .strip_prefix("/v1/spans/")
        .unwrap_or("")
        .parse()
        .map_err(|_| ServeError::BadRequest(format!("invalid request id in '{path}'")))?;
    let spans = shared
        .dispatcher
        .request_spans(id)
        .ok_or(ServeError::JobNotFound(id))?;
    let json = host_spans_chrome_json(
        &[RequestSpans {
            request_id: id,
            spans,
        }],
        &TraceMeta::new(&format!("request {id}")),
    );
    Ok(Response::json(200, json).with_header("X-Request-Id", id.to_string()))
}

/// Dependency-free SIGINT/SIGTERM handling: the libc `signal` entry
/// point, declared directly, flips an atomic the accept loop polls.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// True once either signal has been delivered.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// Non-unix fallback: signals are never triggered; drains come from
/// [`ShutdownHandle`] only.
#[cfg(not(unix))]
mod signals {
    /// No-op on this platform.
    pub fn install() {}

    /// Always false on this platform.
    pub fn triggered() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared() -> Arc<Shared> {
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 4,
            logger: Logger::disabled(),
            ..ServeConfig::default()
        };
        Arc::new(Shared {
            dispatcher: Dispatcher::new(
                Arc::new(Executor::new(2, 4)),
                config.workers,
                config.queue_capacity,
                config.retry_after_secs,
            ),
            metrics: ServerMetrics::with_slo(config.slo),
            limits: config.limits,
            default_deadline: config.default_deadline,
            shutdown: AtomicBool::new(false),
            logger: config.logger,
            spans_enabled: config.request_spans,
        })
    }

    fn get(target: &str) -> Request {
        Request {
            method: "GET".to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn routing_maps_paths_and_methods() {
        let shared = test_shared();
        assert_eq!(
            handle_request(&shared, &get("/healthz")).unwrap().status,
            200
        );
        assert_eq!(
            handle_request(&shared, &get("/metrics")).unwrap().status,
            200
        );
        match handle_request(&shared, &post("/healthz", "")) {
            Err(ServeError::MethodNotAllowed { allow: "GET" }) => {}
            other => panic!("expected 405, got {other:?}"),
        }
        match handle_request(&shared, &get("/v1/render")) {
            Err(ServeError::MethodNotAllowed { allow: "POST" }) => {}
            other => panic!("expected 405, got {other:?}"),
        }
        match handle_request(&shared, &get("/v1/nope")) {
            Err(ServeError::UnknownRoute(t)) => assert_eq!(t, "/v1/nope"),
            other => panic!("expected 404, got {other:?}"),
        }
        match handle_request(&shared, &get("/v1/jobs/seven")) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("invalid job id")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
        match handle_request(&shared, &get("/v1/jobs/12345")) {
            Err(ServeError::JobNotFound(12345)) => {}
            other => panic!("expected JobNotFound, got {other:?}"),
        }
    }

    #[test]
    fn query_jobs_round_trip_with_answers() {
        let shared = test_shared();
        let body = r#"{"scene": "quni", "shader": "knn", "width": 8, "height": 4}"#;
        let first = handle_request(&shared, &post("/v1/query", body)).unwrap();
        assert_eq!(first.status, 200);
        let doc = parse_json(std::str::from_utf8(&first.body).unwrap()).unwrap();
        assert_eq!(doc.get("kind").and_then(|v| v.as_str()), Some("query"));
        assert!(doc.get("answers").is_some());
        // Second submission is a result-cache hit with identical bytes.
        let second = handle_request(&shared, &post("/v1/query", body)).unwrap();
        assert!(second
            .headers
            .iter()
            .any(|(n, v)| n == "X-Cache" && v == "hit"));
        assert_eq!(first.body, second.body);
        // Wrong method gets the POST allow-list; render shaders 400.
        match handle_request(&shared, &get("/v1/query")) {
            Err(ServeError::MethodNotAllowed { allow: "POST" }) => {}
            other => panic!("expected 405, got {other:?}"),
        }
        match handle_request(&shared, &post("/v1/query", r#"{"width": 6, "height": 4}"#)) {
            Err(ServeError::BadRequest(msg)) => assert!(msg.contains("query shader")),
            other => panic!("expected BadRequest, got {other:?}"),
        }
    }

    #[test]
    fn sync_jobs_round_trip_with_cache_headers() {
        let shared = test_shared();
        let body = r#"{"width": 6, "height": 4}"#;
        let first = handle_request(&shared, &post("/v1/render", body)).unwrap();
        assert_eq!(first.status, 200);
        assert!(first
            .headers
            .iter()
            .any(|(n, v)| n == "X-Cache" && v == "miss"));
        let second = handle_request(&shared, &post("/v1/render", body)).unwrap();
        assert_eq!(second.status, 200);
        assert!(second
            .headers
            .iter()
            .any(|(n, v)| n == "X-Cache" && v == "hit"));
        assert_eq!(first.body, second.body, "hit is bitwise identical");
    }

    #[test]
    fn async_jobs_are_accepted_then_pollable() {
        let shared = test_shared();
        let body = r#"{"width": 6, "height": 4, "async": true}"#;
        let accepted = handle_request(&shared, &post("/v1/render", body)).unwrap();
        assert_eq!(accepted.status, 202);
        let doc = parse_json(std::str::from_utf8(&accepted.body).unwrap()).unwrap();
        let id = doc.get("id").and_then(|v| v.as_f64()).unwrap() as u64;
        // Poll until done (bounded by the suite timeout in practice).
        loop {
            let polled = handle_request(&shared, &get(&format!("/v1/jobs/{id}"))).unwrap();
            assert_eq!(polled.status, 200);
            let text = std::str::from_utf8(&polled.body).unwrap();
            if parse_json(text).unwrap().get("kind").is_some() {
                break; // result body delivered
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn metrics_content_negotiation_switches_formats() {
        let shared = test_shared();
        // Default: JSON.
        let json = handle_request(&shared, &get("/metrics")).unwrap();
        assert_eq!(json.content_type, "application/json");
        parse_json(std::str::from_utf8(&json.body).unwrap()).expect("JSON snapshot parses");
        // Accept: text/plain → Prometheus, and the output validates.
        let mut prom_req = get("/metrics");
        prom_req
            .headers
            .push(("accept".to_string(), "text/plain".to_string()));
        let prom = handle_request(&shared, &prom_req).unwrap();
        assert_eq!(prom.content_type, crate::http::PROMETHEUS_CONTENT_TYPE);
        let text = std::str::from_utf8(&prom.body).unwrap();
        cooprt_telemetry::validate_prometheus(text).expect("exposition validates");
        // The query-parameter escape hatch works without headers.
        let prom2 = handle_request(&shared, &get("/metrics?format=prometheus")).unwrap();
        assert_eq!(prom2.content_type, crate::http::PROMETHEUS_CONTENT_TYPE);
    }

    #[test]
    fn span_trails_are_served_as_chrome_trace_json() {
        let shared = test_shared();
        let body = r#"{"width": 6, "height": 4}"#;
        let response = handle_request(&shared, &post("/v1/render", body)).unwrap();
        let id = response
            .headers
            .iter()
            .find(|(n, _)| n == "X-Request-Id")
            .map(|(_, v)| v.clone())
            .expect("request id header");
        let spans = handle_request(&shared, &get(&format!("/v1/spans/{id}"))).unwrap();
        assert_eq!(spans.status, 200);
        let text = std::str::from_utf8(&spans.body).unwrap();
        cooprt_telemetry::validate_chrome_trace(text).expect("span trace validates");
        assert!(text.contains("queue_wait"));
        assert!(text.contains("engine_run"));
        // Unknown ids 404; non-numeric ids 400; wrong method 405.
        assert!(matches!(
            handle_request(&shared, &get("/v1/spans/99999")),
            Err(ServeError::JobNotFound(99999))
        ));
        assert!(matches!(
            handle_request(&shared, &get("/v1/spans/pony")),
            Err(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            handle_request(&shared, &post("/v1/spans/1", "")),
            Err(ServeError::MethodNotAllowed { allow: "GET" })
        ));
    }

    #[test]
    fn malformed_bodies_are_400() {
        let shared = test_shared();
        for body in ["{", "not json", r#"{"scene": "castle"}"#] {
            match handle_request(&shared, &post("/v1/render", body)) {
                Err(ServeError::BadRequest(_)) | Err(ServeError::Config(_)) => {}
                other => panic!("'{body}': expected 400, got {other:?}"),
            }
        }
    }
}
