//! `GET /metrics`: one JSON snapshot of everything the server counts.
//!
//! All counters are lock-free atomics bumped on the request path; the
//! only lock is around the request-latency samples ([`TraceLatencies`]
//! in microseconds), taken once per request after the response is
//! written. The snapshot itself is assembled on demand from the
//! counters plus the dispatcher's and caches' own statistics — there is
//! no second copy of any number to drift out of sync.

use crate::exec::Executor;
use crate::queue::Dispatcher;
use cooprt_core::TraceLatencies;
use cooprt_telemetry::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// HTTP-level counters plus request-latency samples.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed (any route).
    pub requests: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// Request handling latencies, microseconds (parse → response
    /// flushed).
    latencies_us: Mutex<TraceLatencies>,
}

impl ServerMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts a finished response by status class.
    pub fn count_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status / 100 {
            2 => &self.responses_2xx,
            4 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's handling latency in microseconds.
    pub fn record_latency_us(&self, micros: u64) {
        self.latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(micros);
    }

    /// Renders the `/metrics` JSON snapshot.
    pub fn to_json(&self, dispatcher: &Dispatcher, executor: &Executor) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut w = JsonWriter::new();
        w.begin_object();

        w.begin_object_field("http");
        w.field_u64("connections", load(&self.connections));
        w.field_u64("requests", load(&self.requests));
        w.field_u64("responses_2xx", load(&self.responses_2xx));
        w.field_u64("responses_4xx", load(&self.responses_4xx));
        w.field_u64("responses_5xx", load(&self.responses_5xx));
        w.end_object();

        let c = dispatcher.counters();
        w.begin_object_field("jobs");
        w.field_u64("submitted", load(&c.submitted));
        w.field_u64("completed", load(&c.completed));
        w.field_u64("failed", load(&c.failed));
        w.field_u64("rejected_full", load(&c.rejected_full));
        w.field_u64("rejected_draining", load(&c.rejected_draining));
        w.field_u64("queued", dispatcher.queued() as u64);
        w.field_bool("draining", dispatcher.is_draining());
        w.end_object();

        w.begin_object_field("scene_cache");
        w.field_u64("entries", executor.scene_cache().len() as u64);
        w.field_u64("hits", executor.scene_cache().stats().hits());
        w.field_u64("misses", executor.scene_cache().stats().misses());
        w.end_object();

        w.begin_object_field("result_cache");
        w.field_u64("entries", executor.result_cache().len() as u64);
        w.field_u64("hits", executor.result_cache().stats().hits());
        w.field_u64("misses", executor.result_cache().stats().misses());
        w.end_object();

        {
            let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
            w.begin_inline_object_field("latency_us");
            w.field_u64("count", lat.len() as u64);
            w.field_u64("p50", lat.quantile(0.5));
            w.field_u64("p95", lat.quantile(0.95));
            w.field_u64("p99", lat.quantile(0.99));
            w.field_u64("max", lat.max());
            w.end_object();
        }

        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_telemetry::parse_json;
    use std::sync::Arc;

    #[test]
    fn snapshot_reflects_the_counters() {
        let metrics = ServerMetrics::new();
        metrics.connections.fetch_add(2, Ordering::Relaxed);
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(500);
        for us in [100, 200, 300, 400] {
            metrics.record_latency_us(us);
        }
        let dispatcher = Dispatcher::new(Arc::new(Executor::new(1, 1)), 1, 1, 1);
        let json = metrics.to_json(&dispatcher, dispatcher.executor());
        let doc = parse_json(&json).expect("metrics snapshot parses");
        let http = doc.get("http").unwrap();
        assert_eq!(http.get("connections").unwrap().as_f64(), Some(2.0));
        assert_eq!(http.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(http.get("responses_2xx").unwrap().as_f64(), Some(1.0));
        assert_eq!(http.get("responses_4xx").unwrap().as_f64(), Some(1.0));
        assert_eq!(http.get("responses_5xx").unwrap().as_f64(), Some(1.0));
        let lat = doc.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(lat.get("max").unwrap().as_f64(), Some(400.0));
        let jobs = doc.get("jobs").unwrap();
        assert_eq!(
            jobs.get("draining").unwrap(),
            &cooprt_telemetry::JsonValue::Bool(false)
        );
        assert!(doc.get("scene_cache").is_some());
        assert!(doc.get("result_cache").is_some());
    }
}
