//! `GET /metrics`: the server's counters, in JSON and Prometheus form.
//!
//! All counters are lock-free atomics bumped on the request path; the
//! only locks are around the request-latency samples
//! ([`TraceLatencies`] in microseconds) and the rolling SLO window,
//! each taken once per request after the response is written. Both
//! snapshots are assembled on demand from the counters plus the
//! dispatcher's and caches' own statistics — there is no second copy
//! of any number to drift out of sync.
//!
//! The same numbers render two ways: the JSON snapshot (`GET
//! /metrics`, the default) for humans and harnesses, and the
//! Prometheus text exposition (`GET /metrics` with `Accept:
//! text/plain`) for scrapers — every document the server emits must
//! pass the in-tree [`cooprt_telemetry::validate_prometheus`].

use crate::exec::Executor;
use crate::queue::Dispatcher;
use cooprt_core::TraceLatencies;
use cooprt_telemetry::{
    FixedHistogram, JsonWriter, PromKind, PromWriter, RollingWindow, SloConfig, SloSnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Latency histogram bucket bounds, microseconds — shared by the
/// per-route request histograms and the dispatcher's queue-wait
/// histogram.
pub const LATENCY_BUCKETS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// The label set `per-route` metrics aggregate under (low cardinality
/// by construction: path parameters collapse into their route).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `GET /healthz`.
    Healthz,
    /// `GET /metrics` (either representation).
    Metrics,
    /// `POST /v1/render`.
    Render,
    /// `POST /v1/simulate`.
    Simulate,
    /// `GET /v1/jobs/<id>`.
    Jobs,
    /// `GET /v1/spans/<id>`.
    Spans,
    /// `POST /v1/query`.
    Query,
    /// Anything else, including unparsable requests.
    Other,
}

impl Route {
    /// Every route, in label order.
    pub const ALL: [Route; 8] = [
        Route::Healthz,
        Route::Metrics,
        Route::Render,
        Route::Simulate,
        Route::Jobs,
        Route::Spans,
        Route::Query,
        Route::Other,
    ];

    /// The metric label for this route.
    pub fn label(self) -> &'static str {
        match self {
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::Render => "render",
            Route::Simulate => "simulate",
            Route::Jobs => "jobs",
            Route::Spans => "spans",
            Route::Query => "query",
            Route::Other => "other",
        }
    }

    /// Classifies a request path (query already stripped or not —
    /// only the path prefix matters).
    pub fn of_path(path: &str) -> Route {
        let path = path.split('?').next().unwrap_or("");
        match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/v1/render" => Route::Render,
            "/v1/simulate" => Route::Simulate,
            "/v1/query" => Route::Query,
            _ if path.starts_with("/v1/jobs/") => Route::Jobs,
            _ if path.starts_with("/v1/spans/") => Route::Spans,
            _ => Route::Other,
        }
    }

    fn index(self) -> usize {
        Route::ALL.iter().position(|r| *r == self).unwrap_or(7)
    }
}

/// HTTP-level counters, per-route latency histograms, latency
/// samples, and the rolling SLO window.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Requests parsed (any route).
    pub requests: AtomicU64,
    /// Responses with a 1xx status.
    pub responses_1xx: AtomicU64,
    /// Responses with a 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with a 3xx status.
    pub responses_3xx: AtomicU64,
    /// Responses with a 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with a 5xx status.
    pub responses_5xx: AtomicU64,
    /// Request bytes read off sockets (request line + headers + body).
    pub bytes_in: AtomicU64,
    /// Response bytes written to sockets (status line + headers +
    /// body).
    pub bytes_out: AtomicU64,
    route_requests: [AtomicU64; 8],
    route_latency_us: Vec<FixedHistogram>,
    /// Request handling latencies, microseconds (parse → response
    /// flushed).
    latencies_us: Mutex<TraceLatencies>,
    slo: Mutex<RollingWindow>,
    started: Instant,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::with_slo(SloConfig::default())
    }
}

impl ServerMetrics {
    /// A zeroed metrics block with the default SLO window.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed metrics block tracking the given SLO.
    pub fn with_slo(slo: SloConfig) -> Self {
        ServerMetrics {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            responses_1xx: AtomicU64::new(0),
            responses_2xx: AtomicU64::new(0),
            responses_3xx: AtomicU64::new(0),
            responses_4xx: AtomicU64::new(0),
            responses_5xx: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            route_requests: Default::default(),
            route_latency_us: Route::ALL
                .iter()
                .map(|_| FixedHistogram::new(&LATENCY_BUCKETS_US))
                .collect(),
            latencies_us: Mutex::new(TraceLatencies::default()),
            slo: Mutex::new(RollingWindow::new(slo)),
            started: Instant::now(),
        }
    }

    /// Counts a finished response by status class (1xx–5xx each have
    /// their own counter; anything outside 100–599 is counted as 5xx,
    /// since the server itself produced the bogus status).
    pub fn count_response(&self, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status / 100 {
            1 => &self.responses_1xx,
            2 => &self.responses_2xx,
            3 => &self.responses_3xx,
            4 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request's handling latency in microseconds.
    pub fn record_latency_us(&self, micros: u64) {
        self.latencies_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(micros);
    }

    /// Adds wire bytes to the in/out counters.
    pub fn count_bytes(&self, bytes_in: u64, bytes_out: u64) {
        self.bytes_in.fetch_add(bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
    }

    /// Records one finished request end to end: status class, route
    /// counter, per-route latency histogram, latency sample, and the
    /// SLO window (where `ok` means "not a 5xx").
    pub fn observe_request(&self, route: Route, status: u16, latency_us: u64) {
        self.count_response(status);
        self.route_requests[route.index()].fetch_add(1, Ordering::Relaxed);
        self.route_latency_us[route.index()].observe(latency_us);
        self.record_latency_us(latency_us);
        let now_us = self.started.elapsed().as_micros() as u64;
        self.slo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(now_us, latency_us, status < 500);
    }

    /// The current rolling-window SLO summary.
    pub fn slo_snapshot(&self) -> SloSnapshot {
        let now_us = self.started.elapsed().as_micros() as u64;
        self.slo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .snapshot(now_us)
    }

    /// Renders the `/metrics` JSON snapshot.
    pub fn to_json(&self, dispatcher: &Dispatcher, executor: &Executor) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut w = JsonWriter::new();
        w.begin_object();

        w.begin_object_field("http");
        w.field_u64("connections", load(&self.connections));
        w.field_u64("requests", load(&self.requests));
        w.field_u64("responses_1xx", load(&self.responses_1xx));
        w.field_u64("responses_2xx", load(&self.responses_2xx));
        w.field_u64("responses_3xx", load(&self.responses_3xx));
        w.field_u64("responses_4xx", load(&self.responses_4xx));
        w.field_u64("responses_5xx", load(&self.responses_5xx));
        w.field_u64("bytes_in", load(&self.bytes_in));
        w.field_u64("bytes_out", load(&self.bytes_out));
        w.end_object();

        w.begin_inline_object_field("routes");
        for route in Route::ALL {
            w.field_u64(route.label(), load(&self.route_requests[route.index()]));
        }
        w.end_object();

        let c = dispatcher.counters();
        w.begin_object_field("jobs");
        w.field_u64("submitted", load(&c.submitted));
        w.field_u64("completed", load(&c.completed));
        w.field_u64("failed", load(&c.failed));
        w.field_u64("rejected_full", load(&c.rejected_full));
        w.field_u64("rejected_draining", load(&c.rejected_draining));
        w.field_u64("queued", dispatcher.queued() as u64);
        w.field_bool("draining", dispatcher.is_draining());
        w.end_object();

        w.begin_inline_object_field("queue");
        w.field_u64("depth", dispatcher.queued() as u64);
        w.field_u64("capacity", dispatcher.queue_capacity() as u64);
        {
            let wait = dispatcher.queue_wait_us().snapshot();
            w.field_u64("wait_count", wait.count());
            w.field_u64("wait_sum_us", wait.sum);
        }
        w.end_object();

        w.begin_inline_object_field("workers");
        w.field_u64("total", dispatcher.workers_total() as u64);
        w.field_u64("busy", dispatcher.busy_workers());
        w.end_object();

        w.begin_object_field("scene_cache");
        w.field_u64("entries", executor.scene_cache().len() as u64);
        w.field_u64("hits", executor.scene_cache().stats().hits());
        w.field_u64("misses", executor.scene_cache().stats().misses());
        w.end_object();

        w.begin_object_field("result_cache");
        w.field_u64("entries", executor.result_cache().len() as u64);
        w.field_u64("hits", executor.result_cache().stats().hits());
        w.field_u64("misses", executor.result_cache().stats().misses());
        w.end_object();

        {
            let mut lat = self.latencies_us.lock().unwrap_or_else(|e| e.into_inner());
            w.begin_inline_object_field("latency_us");
            w.field_u64("count", lat.len() as u64);
            w.field_u64("p50", lat.quantile(0.5));
            w.field_u64("p95", lat.quantile(0.95));
            w.field_u64("p99", lat.quantile(0.99));
            w.field_u64("max", lat.max());
            w.end_object();
        }

        w.begin_inline_object_field("slo");
        self.slo_snapshot().write_fields(&mut w);
        w.end_object();

        w.end_object();
        w.finish()
    }

    /// Renders the Prometheus text-format exposition (the `Accept:
    /// text/plain` representation of `GET /metrics`). The output is
    /// guaranteed to pass [`cooprt_telemetry::validate_prometheus`]
    /// (asserted by tests and the CI smoke).
    pub fn to_prometheus(&self, dispatcher: &Dispatcher, executor: &Executor) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64;
        let mut w = PromWriter::new();

        w.family(
            "cooprt_http_connections_total",
            "Connections accepted.",
            PromKind::Counter,
        );
        w.sample(
            "cooprt_http_connections_total",
            &[],
            load(&self.connections),
        );

        w.family(
            "cooprt_http_requests_total",
            "Requests handled, by route.",
            PromKind::Counter,
        );
        for route in Route::ALL {
            w.sample(
                "cooprt_http_requests_total",
                &[("route", route.label())],
                load(&self.route_requests[route.index()]),
            );
        }

        w.family(
            "cooprt_http_responses_total",
            "Responses sent, by status class.",
            PromKind::Counter,
        );
        for (class, counter) in [
            ("1xx", &self.responses_1xx),
            ("2xx", &self.responses_2xx),
            ("3xx", &self.responses_3xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            w.sample(
                "cooprt_http_responses_total",
                &[("class", class)],
                load(counter),
            );
        }

        w.family(
            "cooprt_http_bytes_total",
            "Wire bytes, by direction.",
            PromKind::Counter,
        );
        w.sample(
            "cooprt_http_bytes_total",
            &[("direction", "in")],
            load(&self.bytes_in),
        );
        w.sample(
            "cooprt_http_bytes_total",
            &[("direction", "out")],
            load(&self.bytes_out),
        );

        w.family(
            "cooprt_request_latency_us",
            "Request handling latency (parse to flush), microseconds, by route.",
            PromKind::Histogram,
        );
        for route in Route::ALL {
            let snap = self.route_latency_us[route.index()].snapshot();
            w.histogram(
                "cooprt_request_latency_us",
                &[("route", route.label())],
                &snap,
            );
        }

        let c = dispatcher.counters();
        w.family(
            "cooprt_jobs_total",
            "Dispatcher job outcomes.",
            PromKind::Counter,
        );
        for (event, counter) in [
            ("submitted", &c.submitted),
            ("completed", &c.completed),
            ("failed", &c.failed),
            ("rejected_full", &c.rejected_full),
            ("rejected_draining", &c.rejected_draining),
        ] {
            w.sample("cooprt_jobs_total", &[("event", event)], load(counter));
        }

        w.family(
            "cooprt_queue_depth",
            "Jobs waiting in the admission queue.",
            PromKind::Gauge,
        );
        w.sample("cooprt_queue_depth", &[], dispatcher.queued() as f64);
        w.family(
            "cooprt_queue_capacity",
            "Admission queue capacity.",
            PromKind::Gauge,
        );
        w.sample(
            "cooprt_queue_capacity",
            &[],
            dispatcher.queue_capacity() as f64,
        );

        w.family(
            "cooprt_queue_wait_us",
            "Time jobs waited in the queue before a worker claimed them, microseconds.",
            PromKind::Histogram,
        );
        w.histogram(
            "cooprt_queue_wait_us",
            &[],
            &dispatcher.queue_wait_us().snapshot(),
        );

        w.family("cooprt_workers", "Worker pool occupancy.", PromKind::Gauge);
        w.sample(
            "cooprt_workers",
            &[("state", "busy")],
            dispatcher.busy_workers() as f64,
        );
        w.sample(
            "cooprt_workers",
            &[("state", "total")],
            dispatcher.workers_total() as f64,
        );

        w.family(
            "cooprt_draining",
            "1 once a graceful drain has begun.",
            PromKind::Gauge,
        );
        w.sample(
            "cooprt_draining",
            &[],
            if dispatcher.is_draining() { 1.0 } else { 0.0 },
        );

        w.family(
            "cooprt_cache_requests_total",
            "Cache probes, by cache and outcome.",
            PromKind::Counter,
        );
        for (cache, stats) in [
            ("scene", executor.scene_cache().stats()),
            ("result", executor.result_cache().stats()),
        ] {
            w.sample(
                "cooprt_cache_requests_total",
                &[("cache", cache), ("outcome", "hit")],
                stats.hits() as f64,
            );
            w.sample(
                "cooprt_cache_requests_total",
                &[("cache", cache), ("outcome", "miss")],
                stats.misses() as f64,
            );
        }

        w.family(
            "cooprt_cache_entries",
            "Entries resident, by cache.",
            PromKind::Gauge,
        );
        w.sample(
            "cooprt_cache_entries",
            &[("cache", "scene")],
            executor.scene_cache().len() as f64,
        );
        w.sample(
            "cooprt_cache_entries",
            &[("cache", "result")],
            executor.result_cache().len() as f64,
        );

        let slo = self.slo_snapshot();
        w.family(
            "cooprt_slo_window_latency_us",
            "Rolling-window latency quantiles, microseconds.",
            PromKind::Gauge,
        );
        for (q, v) in [
            ("0.5", slo.p50_us),
            ("0.95", slo.p95_us),
            ("0.99", slo.p99_us),
        ] {
            w.sample("cooprt_slo_window_latency_us", &[("quantile", q)], v as f64);
        }
        w.family(
            "cooprt_slo_window_requests",
            "Requests inside the rolling window.",
            PromKind::Gauge,
        );
        w.sample("cooprt_slo_window_requests", &[], slo.count as f64);
        w.family(
            "cooprt_slo_attainment",
            "Fraction of window requests meeting the SLO (1.0 when idle).",
            PromKind::Gauge,
        );
        w.sample("cooprt_slo_attainment", &[], slo.attainment);
        w.family(
            "cooprt_slo_error_budget_burn",
            "Error-budget burn rate over the window (1.0 = burning at the objective's rate).",
            PromKind::Gauge,
        );
        w.sample(
            "cooprt_slo_error_budget_burn",
            &[],
            slo.error_budget_burn.min(1.0e9),
        );

        w.family(
            "cooprt_uptime_seconds",
            "Seconds since the metrics block was created.",
            PromKind::Gauge,
        );
        w.sample(
            "cooprt_uptime_seconds",
            &[],
            self.started.elapsed().as_secs_f64(),
        );

        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_telemetry::{parse_json, validate_prometheus};
    use std::sync::Arc;

    fn dispatcher() -> Dispatcher {
        Dispatcher::new(Arc::new(Executor::new(1, 1)), 1, 1, 1)
    }

    #[test]
    fn snapshot_reflects_the_counters() {
        let metrics = ServerMetrics::new();
        metrics.connections.fetch_add(2, Ordering::Relaxed);
        metrics.count_response(200);
        metrics.count_response(404);
        metrics.count_response(500);
        for us in [100, 200, 300, 400] {
            metrics.record_latency_us(us);
        }
        let dispatcher = dispatcher();
        let json = metrics.to_json(&dispatcher, dispatcher.executor());
        let doc = parse_json(&json).expect("metrics snapshot parses");
        let http = doc.get("http").unwrap();
        assert_eq!(http.get("connections").unwrap().as_f64(), Some(2.0));
        assert_eq!(http.get("requests").unwrap().as_f64(), Some(3.0));
        assert_eq!(http.get("responses_2xx").unwrap().as_f64(), Some(1.0));
        assert_eq!(http.get("responses_4xx").unwrap().as_f64(), Some(1.0));
        assert_eq!(http.get("responses_5xx").unwrap().as_f64(), Some(1.0));
        let lat = doc.get("latency_us").unwrap();
        assert_eq!(lat.get("count").unwrap().as_f64(), Some(4.0));
        assert_eq!(lat.get("max").unwrap().as_f64(), Some(400.0));
        let jobs = doc.get("jobs").unwrap();
        assert_eq!(
            jobs.get("draining").unwrap(),
            &cooprt_telemetry::JsonValue::Bool(false)
        );
        assert!(doc.get("scene_cache").is_some());
        assert!(doc.get("result_cache").is_some());
    }

    #[test]
    fn every_status_class_lands_on_its_own_counter() {
        // The old match sent 1xx and 3xx to the 5xx counter; pin the
        // correct classification for every class and the out-of-range
        // fallback.
        let metrics = ServerMetrics::new();
        for status in [
            100, 101, 200, 202, 204, 301, 304, 400, 404, 429, 500, 504, 599,
        ] {
            metrics.count_response(status);
        }
        metrics.count_response(999); // bogus status -> 5xx bucket
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        assert_eq!(load(&metrics.responses_1xx), 2);
        assert_eq!(load(&metrics.responses_2xx), 3);
        assert_eq!(load(&metrics.responses_3xx), 2);
        assert_eq!(load(&metrics.responses_4xx), 3);
        assert_eq!(load(&metrics.responses_5xx), 4);
        assert_eq!(load(&metrics.requests), 14);
    }

    #[test]
    fn snapshot_exposes_queue_workers_and_slo() {
        let metrics = ServerMetrics::new();
        metrics.observe_request(Route::Render, 200, 1_500);
        metrics.observe_request(Route::Render, 500, 900_000);
        metrics.count_bytes(120, 4_000);
        let dispatcher = dispatcher();
        let json = metrics.to_json(&dispatcher, dispatcher.executor());
        let doc = parse_json(&json).expect("metrics snapshot parses");
        let queue = doc.get("queue").unwrap();
        assert_eq!(queue.get("depth").unwrap().as_f64(), Some(0.0));
        assert_eq!(queue.get("capacity").unwrap().as_f64(), Some(1.0));
        let workers = doc.get("workers").unwrap();
        assert_eq!(workers.get("total").unwrap().as_f64(), Some(1.0));
        assert_eq!(workers.get("busy").unwrap().as_f64(), Some(0.0));
        let http = doc.get("http").unwrap();
        assert_eq!(http.get("bytes_in").unwrap().as_f64(), Some(120.0));
        assert_eq!(http.get("bytes_out").unwrap().as_f64(), Some(4000.0));
        let slo = doc.get("slo").unwrap();
        assert_eq!(slo.get("count").unwrap().as_f64(), Some(2.0));
        // One 5xx out of two requests: attainment 0.5.
        assert_eq!(slo.get("attainment").unwrap().as_f64(), Some(0.5));
        let routes = doc.get("routes").unwrap();
        assert_eq!(routes.get("render").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn prometheus_exposition_passes_the_validator() {
        let metrics = ServerMetrics::new();
        metrics.connections.fetch_add(1, Ordering::Relaxed);
        metrics.observe_request(Route::Render, 200, 750);
        metrics.observe_request(Route::Metrics, 200, 90);
        metrics.observe_request(Route::Other, 404, 40);
        metrics.count_bytes(256, 2_048);
        let dispatcher = dispatcher();
        let text = metrics.to_prometheus(&dispatcher, dispatcher.executor());
        let check = validate_prometheus(&text).expect("exposition validates");
        for name in [
            "cooprt_http_requests_total",
            "cooprt_http_responses_total",
            "cooprt_http_bytes_total",
            "cooprt_request_latency_us",
            "cooprt_jobs_total",
            "cooprt_queue_depth",
            "cooprt_queue_wait_us",
            "cooprt_workers",
            "cooprt_cache_requests_total",
            "cooprt_slo_attainment",
            "cooprt_slo_error_budget_burn",
        ] {
            assert!(check.names.contains(name), "missing family {name}");
        }
        assert!(text.contains("cooprt_http_requests_total{route=\"render\"} 1"));
        assert!(text.contains("cooprt_http_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("cooprt_request_latency_us_bucket{route=\"render\",le=\"1000\"} 1"));
        assert!(text.contains("cooprt_slo_attainment 1"));
    }

    #[test]
    fn routes_classify_paths_with_and_without_queries() {
        assert_eq!(Route::of_path("/healthz"), Route::Healthz);
        assert_eq!(Route::of_path("/metrics?format=prometheus"), Route::Metrics);
        assert_eq!(Route::of_path("/v1/render"), Route::Render);
        assert_eq!(Route::of_path("/v1/jobs/17"), Route::Jobs);
        assert_eq!(Route::of_path("/v1/spans/17"), Route::Spans);
        assert_eq!(Route::of_path("/nope"), Route::Other);
    }
}
