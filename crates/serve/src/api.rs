//! The request schema: JSON bodies → validated [`JobRequest`]s.
//!
//! Parsing is strict — unknown scenes, out-of-range dimensions, or
//! wrong-typed fields are a 400 with a message naming the offending
//! field, never a default silently applied to a field the client *did*
//! send. Every field the simulation depends on participates in
//! [`JobRequest::canonical_key`], the string the result cache hashes;
//! delivery options (`async`, `deadline_ms`) are deliberately excluded
//! so the same work requested sync or async shares one cache entry.

use crate::error::ServeError;
use cooprt_core::{GpuConfig, PredictPolicy, ReorderPolicy, ShaderKind, TraversalPolicy};
use cooprt_scenes::{SceneId, ALL_SCENES, QUERY_SCENES};
use cooprt_telemetry::JsonValue;

/// Widest frame the service will simulate (cycle-level simulation is
/// expensive; the cap keeps one request from monopolizing a worker).
pub const MAX_DIM: usize = 256;
/// Cap on total pixels per frame (tighter than `MAX_DIM`² so wide ×
/// tall frames can't multiply into an outsized job).
pub const MAX_PIXELS: usize = 32 * 1024;
/// Cap on samples per pixel.
pub const MAX_SPP: u32 = 64;
/// Cap on the scene detail multiplier.
pub const MAX_DETAIL: u32 = 16;
/// Cap on simulated SM count for the `small` config preset.
pub const MAX_SMS: usize = 64;

/// Which GPU configuration preset a job runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigPreset {
    /// [`GpuConfig::rtx2060`].
    Rtx2060,
    /// [`GpuConfig::mobile`].
    Mobile,
    /// [`GpuConfig::small`] with the given SM count.
    Small(usize),
}

impl ConfigPreset {
    /// Instantiates the preset.
    pub fn build(self) -> GpuConfig {
        match self {
            ConfigPreset::Rtx2060 => GpuConfig::rtx2060(),
            ConfigPreset::Mobile => GpuConfig::mobile(),
            ConfigPreset::Small(sms) => GpuConfig::small(sms),
        }
    }

    /// Stable label for cache keys and responses.
    pub fn label(self) -> String {
        match self {
            ConfigPreset::Rtx2060 => "rtx2060".to_string(),
            ConfigPreset::Mobile => "mobile".to_string(),
            ConfigPreset::Small(sms) => format!("small{sms}"),
        }
    }
}

/// A validated render/simulation job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRequest {
    /// Scene to render.
    pub scene: SceneId,
    /// Scene detail multiplier (clutter scale), ≥ 1.
    pub detail: u32,
    /// Frame width, pixels.
    pub width: usize,
    /// Frame height, pixels.
    pub height: usize,
    /// Samples per pixel.
    pub spp: u32,
    /// Shader the frame runs.
    pub shader: ShaderKind,
    /// Traversal policy under test.
    pub policy: TraversalPolicy,
    /// Ray-reordering policy applied ahead of warp formation.
    pub reorder: ReorderPolicy,
    /// Ray-path prediction policy in the RT units.
    pub predict: PredictPolicy,
    /// GPU configuration preset.
    pub config: ConfigPreset,
    /// Include the accumulated image (as `f32::to_bits` words) in the
    /// response body.
    pub include_image: bool,
    /// Run with the tracer enabled and report the event count.
    pub trace: bool,
    /// Submit-and-poll instead of waiting for the result.
    pub run_async: bool,
    /// Per-request deadline, milliseconds (None = server default).
    pub deadline_ms: Option<u64>,
}

impl Default for JobRequest {
    fn default() -> Self {
        JobRequest {
            scene: SceneId::Wknd,
            detail: 1,
            width: 16,
            height: 12,
            spp: 1,
            shader: ShaderKind::PathTrace,
            policy: TraversalPolicy::CoopRt,
            reorder: ReorderPolicy::Off,
            predict: PredictPolicy::Off,
            config: ConfigPreset::Small(2),
            include_image: false,
            trace: false,
            run_async: false,
            deadline_ms: None,
        }
    }
}

/// Looks up a scene by its suite name — the 15 render scenes plus the
/// 4 spatial-query scenes.
pub fn scene_by_name(name: &str) -> Option<SceneId> {
    ALL_SCENES
        .iter()
        .chain(QUERY_SCENES.iter())
        .copied()
        .find(|s| s.name() == name)
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

/// `doc[field]` as an exact non-negative integer, if present.
fn opt_uint(doc: &JsonValue, field: &str) -> Result<Option<u64>, ServeError> {
    match doc.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| bad(format!("field '{field}' must be a number")))?;
            if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(bad(format!(
                    "field '{field}' must be a non-negative integer, got {n}"
                )));
            }
            Ok(Some(n as u64))
        }
    }
}

/// `doc[field]` as a string, if present.
fn opt_str<'a>(doc: &'a JsonValue, field: &str) -> Result<Option<&'a str>, ServeError> {
    match doc.get(field) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad(format!("field '{field}' must be a string"))),
    }
}

/// `doc[field]` as a bool, defaulting to `false`.
fn opt_bool(doc: &JsonValue, field: &str) -> Result<bool, ServeError> {
    match doc.get(field) {
        None | Some(JsonValue::Null) => Ok(false),
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(bad(format!("field '{field}' must be a boolean"))),
    }
}

impl JobRequest {
    /// Parses and validates a request body.
    ///
    /// Every absent field falls back to [`JobRequest::default`]; every
    /// present field is type- and range-checked.
    pub fn from_json(doc: &JsonValue) -> Result<JobRequest, ServeError> {
        if !matches!(doc, JsonValue::Object(_)) {
            return Err(bad("request body must be a JSON object"));
        }
        let mut req = JobRequest::default();

        if let Some(name) = opt_str(doc, "scene")? {
            req.scene = scene_by_name(name).ok_or_else(|| {
                let known: Vec<&str> = ALL_SCENES
                    .iter()
                    .chain(QUERY_SCENES.iter())
                    .map(|s| s.name())
                    .collect();
                bad(format!(
                    "unknown scene '{name}' (known: {})",
                    known.join(", ")
                ))
            })?;
        }
        if let Some(detail) = opt_uint(doc, "detail")? {
            if detail == 0 || detail > u64::from(MAX_DETAIL) {
                return Err(bad(format!("detail must be in 1..={MAX_DETAIL}")));
            }
            req.detail = detail as u32;
        }
        if let Some(w) = opt_uint(doc, "width")? {
            req.width = w as usize;
        }
        if let Some(h) = opt_uint(doc, "height")? {
            req.height = h as usize;
        }
        if req.width == 0 || req.height == 0 || req.width > MAX_DIM || req.height > MAX_DIM {
            return Err(bad(format!(
                "frame must be 1x1..={MAX_DIM}x{MAX_DIM}, got {}x{}",
                req.width, req.height
            )));
        }
        if req.width * req.height > MAX_PIXELS {
            return Err(bad(format!(
                "frame exceeds the {MAX_PIXELS}-pixel cap ({}x{})",
                req.width, req.height
            )));
        }
        if let Some(spp) = opt_uint(doc, "spp")? {
            if spp == 0 || spp > u64::from(MAX_SPP) {
                return Err(bad(format!("spp must be in 1..={MAX_SPP}")));
            }
            req.spp = spp as u32;
        }
        if let Some(s) = opt_str(doc, "shader")? {
            req.shader = match s {
                "pt" | "path" => ShaderKind::PathTrace,
                "ao" => ShaderKind::AmbientOcclusion,
                "sh" | "shadow" => ShaderKind::Shadow,
                "knn" => ShaderKind::Knn,
                "rad" | "radius" => ShaderKind::Radius,
                "cont" | "contain" => ShaderKind::Contain,
                other => {
                    return Err(bad(format!(
                        "unknown shader '{other}' (pt, ao, sh, knn, rad, cont)"
                    )))
                }
            };
        }
        if let Some(p) = opt_str(doc, "policy")? {
            req.policy = match p {
                "baseline" => TraversalPolicy::Baseline,
                "cooprt" => TraversalPolicy::CoopRt,
                other => return Err(bad(format!("unknown policy '{other}' (baseline, cooprt)"))),
            };
        }
        if let Some(r) = opt_str(doc, "reorder")? {
            req.reorder = ReorderPolicy::parse(r)
                .ok_or_else(|| bad(format!("unknown reorder '{r}' (off, morton, octant-hash)")))?;
        }
        if let Some(p) = opt_str(doc, "predict")? {
            req.predict = PredictPolicy::parse(p)
                .ok_or_else(|| bad(format!("unknown predict '{p}' (off, ray-path)")))?;
        }
        if let Some(c) = opt_str(doc, "config")? {
            req.config = match c {
                "rtx2060" => ConfigPreset::Rtx2060,
                "mobile" => ConfigPreset::Mobile,
                "small" => {
                    let sms = opt_uint(doc, "sms")?.unwrap_or(2);
                    if sms == 0 || sms > MAX_SMS as u64 {
                        return Err(bad(format!("sms must be in 1..={MAX_SMS}")));
                    }
                    ConfigPreset::Small(sms as usize)
                }
                other => {
                    return Err(bad(format!(
                        "unknown config '{other}' (rtx2060, mobile, small)"
                    )))
                }
            };
        } else if doc.get("sms").is_some() {
            return Err(bad("field 'sms' requires config \"small\""));
        }
        req.include_image = opt_bool(doc, "include_image")?;
        req.trace = opt_bool(doc, "trace")?;
        req.run_async = opt_bool(doc, "async")?;
        req.deadline_ms = opt_uint(doc, "deadline_ms")?;
        if req.deadline_ms == Some(0) {
            return Err(bad("deadline_ms must be positive"));
        }
        Ok(req)
    }

    /// The canonical identity of the *work* this request names.
    ///
    /// Two requests with equal keys must produce bitwise-identical
    /// response bodies, so the key covers everything the body depends
    /// on (scene, geometry detail, frame, spp, shader, policy, config,
    /// body-shape options) and nothing about delivery (`async`,
    /// `deadline_ms`).
    pub fn canonical_key(&self) -> String {
        format!(
            "scene={} detail={} w={} h={} spp={} shader={} policy={} reorder={} predict={} \
             config={} image={} trace={}",
            self.scene.name(),
            self.detail,
            self.width,
            self.height,
            self.spp,
            self.shader.key(),
            self.policy.label(),
            self.reorder.label(),
            self.predict.label(),
            self.config.label(),
            self.include_image,
            self.trace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_telemetry::parse_json;

    fn parse(body: &str) -> Result<JobRequest, ServeError> {
        JobRequest::from_json(&parse_json(body).expect("test body is valid JSON"))
    }

    #[test]
    fn defaults_fill_absent_fields() {
        let req = parse("{}").unwrap();
        assert_eq!(req, JobRequest::default());
    }

    #[test]
    fn a_fully_specified_request_round_trips() {
        let req = parse(
            r#"{"scene": "bunny", "detail": 2, "width": 64, "height": 48,
                "spp": 4, "shader": "ao", "policy": "baseline",
                "reorder": "octant-hash", "predict": "ray-path",
                "config": "small", "sms": 4, "include_image": true,
                "trace": true, "async": true, "deadline_ms": 5000}"#,
        )
        .unwrap();
        assert_eq!(req.scene, SceneId::Bunny);
        assert_eq!(req.detail, 2);
        assert_eq!((req.width, req.height, req.spp), (64, 48, 4));
        assert_eq!(req.shader, ShaderKind::AmbientOcclusion);
        assert_eq!(req.policy, TraversalPolicy::Baseline);
        assert_eq!(req.reorder, ReorderPolicy::OctantHash);
        assert_eq!(req.predict, PredictPolicy::RayPath);
        assert_eq!(req.config, ConfigPreset::Small(4));
        assert!(req.include_image && req.trace && req.run_async);
        assert_eq!(req.deadline_ms, Some(5000));
    }

    #[test]
    fn query_scenes_and_shaders_parse() {
        let req = parse(r#"{"scene": "quni", "shader": "knn"}"#).unwrap();
        assert_eq!(req.scene, SceneId::Quni);
        assert_eq!(req.shader, ShaderKind::Knn);
        let req = parse(r#"{"scene": "qclu", "shader": "radius"}"#).unwrap();
        assert_eq!(req.shader, ShaderKind::Radius);
        let req = parse(r#"{"scene": "qamr", "shader": "cont"}"#).unwrap();
        assert_eq!(
            (req.scene, req.shader),
            (SceneId::Qamr, ShaderKind::Contain)
        );
        // Query shaders move the canonical key like any other shader.
        let knn = parse(r#"{"scene": "quni", "shader": "knn"}"#).unwrap();
        let rad = parse(r#"{"scene": "quni", "shader": "rad"}"#).unwrap();
        assert_ne!(knn.canonical_key(), rad.canonical_key());
    }

    #[test]
    fn invalid_requests_name_the_offending_field() {
        for (body, needle) in [
            (r#"[1, 2]"#, "JSON object"),
            (r#"{"scene": "castle"}"#, "unknown scene 'castle'"),
            (r#"{"scene": 7}"#, "'scene' must be a string"),
            (r#"{"width": 0}"#, "frame must be"),
            (r#"{"width": 10000}"#, "frame must be"),
            (r#"{"width": 256, "height": 256}"#, "pixel cap"),
            (r#"{"width": 12.5}"#, "non-negative integer"),
            (r#"{"spp": 0}"#, "spp must be"),
            (r#"{"spp": 100000}"#, "spp must be"),
            (r#"{"detail": 0}"#, "detail must be"),
            (r#"{"shader": "raster"}"#, "unknown shader"),
            (r#"{"policy": "magic"}"#, "unknown policy"),
            (r#"{"reorder": "zorder"}"#, "unknown reorder"),
            (r#"{"reorder": 1}"#, "'reorder' must be a string"),
            (r#"{"predict": "psychic"}"#, "unknown predict"),
            (r#"{"predict": 1}"#, "'predict' must be a string"),
            (r#"{"config": "h100"}"#, "unknown config"),
            (r#"{"config": "small", "sms": 0}"#, "sms must be"),
            (r#"{"sms": 4}"#, "requires config"),
            (r#"{"trace": "yes"}"#, "'trace' must be a boolean"),
            (r#"{"deadline_ms": 0}"#, "deadline_ms must be positive"),
        ] {
            match parse(body) {
                Err(ServeError::BadRequest(msg)) => {
                    assert!(msg.contains(needle), "'{body}': got message '{msg}'");
                }
                other => panic!("'{body}': expected BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn canonical_keys_ignore_delivery_options_only() {
        let base = parse(r#"{"scene": "bunny", "spp": 2}"#).unwrap();
        let asynced =
            parse(r#"{"scene": "bunny", "spp": 2, "async": true, "deadline_ms": 99}"#).unwrap();
        assert_eq!(base.canonical_key(), asynced.canonical_key());

        // Every work-shaping field must move the key.
        for body in [
            r#"{"scene": "ship", "spp": 2}"#,
            r#"{"scene": "bunny", "spp": 3}"#,
            r#"{"scene": "bunny", "spp": 2, "detail": 2}"#,
            r#"{"scene": "bunny", "spp": 2, "width": 17}"#,
            r#"{"scene": "bunny", "spp": 2, "shader": "ao"}"#,
            r#"{"scene": "bunny", "spp": 2, "policy": "baseline"}"#,
            r#"{"scene": "bunny", "spp": 2, "reorder": "morton"}"#,
            r#"{"scene": "bunny", "spp": 2, "reorder": "octant-hash"}"#,
            r#"{"scene": "bunny", "spp": 2, "predict": "ray-path"}"#,
            r#"{"scene": "bunny", "spp": 2, "config": "mobile"}"#,
            r#"{"scene": "bunny", "spp": 2, "include_image": true}"#,
            r#"{"scene": "bunny", "spp": 2, "trace": true}"#,
        ] {
            let other = parse(body).unwrap();
            assert_ne!(base.canonical_key(), other.canonical_key(), "{body}");
        }

        // The reorder policies must not collide with each other either.
        let morton = parse(r#"{"scene": "bunny", "spp": 2, "reorder": "morton"}"#).unwrap();
        let octant = parse(r#"{"scene": "bunny", "spp": 2, "reorder": "octant-hash"}"#).unwrap();
        assert_ne!(morton.canonical_key(), octant.canonical_key());
    }
}
