//! A dependency-free batch render/simulation service over the CoopRT
//! simulator.
//!
//! The crate turns the library simulator into a long-running HTTP/1.1 +
//! JSON service — entirely on `std::net`, honoring the workspace's
//! zero-external-dependency rule. The layering, bottom-up:
//!
//! - [`http`]: a strict HTTP/1.1 reader/writer — partial-read safe,
//!   keep-alive, hard caps on header (431) and body (413) sizes;
//! - [`api`]: the JSON request schema, validated into [`JobRequest`]s
//!   with a canonical cache key;
//! - [`cache`]: bounded content-addressed caches — `(scene, detail)` →
//!   built scene, canonical-key hash → finished response body;
//! - [`exec`]: the [`Executor`], which runs jobs and builds fully
//!   deterministic bodies so a cache hit is bitwise identical to a
//!   fresh run;
//! - [`queue`]: the bounded admission queue + worker pool
//!   ([`Dispatcher`]) — full queue ⇒ 429 + `Retry-After`, draining ⇒
//!   503, admitted work always finishes;
//! - [`server`]: the accept loop, routing, per-request deadlines, and
//!   graceful drain on SIGTERM/ctrl-c;
//! - [`metrics`] / [`error`] / [`client`]: the `/metrics` snapshot, the
//!   typed [`ServeError`] → status mapping, and a minimal client for
//!   harnesses.
//!
//! # Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/v1/render` | POST | run a frame job (sync, or `"async": true`) |
//! | `/v1/simulate` | POST | same job, full metrics report body |
//! | `/v1/jobs/<id>` | GET | poll an async job |
//! | `/v1/spans/<id>` | GET | a request's host span trail (Chrome trace JSON) |
//! | `/metrics` | GET | JSON snapshot; Prometheus text under `Accept: text/plain` |
//! | `/healthz` | GET | liveness + drain state |
//!
//! # Observability
//!
//! The serve path is threaded with the telemetry crate's host-side
//! observability: structured JSON-lines logging (configured by the
//! `COOPRT_LOG` environment variable), per-request span trails keyed by
//! `X-Request-Id`, Prometheus exposition with a rolling-window SLO
//! tracker, and per-route latency histograms. All of it is
//! zero-overhead when disabled and — by construction — never touches a
//! response body: cache hits stay bitwise identical to fresh runs with
//! every layer of telemetry enabled.

pub mod api;
pub mod cache;
pub mod client;
pub mod error;
pub mod exec;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use api::{ConfigPreset, JobRequest};
pub use cache::{fnv1a64, ResultCache, SceneCache};
pub use client::{ClientResponse, HttpClient};
pub use error::ServeError;
pub use exec::{Endpoint, ExecOutcome, Executor};
pub use http::{Limits, Request, RequestReader, Response, PROMETHEUS_CONTENT_TYPE};
pub use metrics::{Route, ServerMetrics, LATENCY_BUCKETS_US};
pub use queue::{Dispatcher, JobState};
pub use server::{ServeConfig, Server, ShutdownHandle};
