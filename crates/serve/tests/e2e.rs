//! End-to-end tests over real sockets: concurrent clients, cache-hit
//! identity, admission control (429), protocol limits, graceful drain,
//! and the no-perturbation invariant for observability.

use cooprt_serve::{HttpClient, Limits, ServeConfig, Server, ShutdownHandle};
use cooprt_telemetry::{parse_json, validate_chrome_trace, validate_prometheus, Logger};
use std::thread;
use std::time::Duration;

/// Binds a server with `config`, runs it on a background thread, and
/// returns `(address, shutdown handle, join handle)`.
fn start(config: ServeConfig) -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let join = thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn default_server() -> (String, ShutdownHandle, thread::JoinHandle<()>) {
    start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        ..ServeConfig::default()
    })
}

const SMALL_JOB: &str = r#"{"width": 8, "height": 6, "scene": "bunny"}"#;

#[test]
fn health_metrics_and_render_round_trip() {
    let (addr, handle, join) = default_server();
    let mut client = HttpClient::connect(&addr).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    let doc = parse_json(&health.text()).unwrap();
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));

    // First render is a miss, the repeat a bitwise-identical hit —
    // over the same keep-alive connection.
    let first = client.post("/v1/render", SMALL_JOB).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = client.post("/v1/render", SMALL_JOB).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");
    assert!(first.header("x-request-id").is_some());

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let doc = parse_json(&metrics.text()).unwrap();
    let cache = doc.get("result_cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_f64(), Some(1.0));
    assert_eq!(cache.get("misses").unwrap().as_f64(), Some(1.0));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn concurrent_clients_agree_on_the_cached_body() {
    let (addr, handle, join) = default_server();
    let bodies: Vec<Vec<u8>> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = HttpClient::connect(&addr).unwrap();
                let resp = client.post("/v1/render", SMALL_JOB).unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
                resp.body
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for body in &bodies[1..] {
        assert_eq!(body, &bodies[0], "every client sees identical bytes");
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn async_jobs_poll_to_completion() {
    let (addr, handle, join) = default_server();
    let mut client = HttpClient::connect(&addr).unwrap();
    let body = r#"{"width": 8, "height": 6, "async": true}"#;
    let accepted = client.post("/v1/simulate", body).unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    let id = parse_json(&accepted.text())
        .unwrap()
        .get("id")
        .and_then(|v| v.as_f64())
        .unwrap() as u64;
    let result = loop {
        let polled = client.get(&format!("/v1/jobs/{id}")).unwrap();
        assert_eq!(polled.status, 200, "{}", polled.text());
        let doc = parse_json(&polled.text()).unwrap();
        if doc.get("kind").is_some() {
            break doc;
        }
        thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        result.get("kind").and_then(|v| v.as_str()),
        Some("simulate")
    );
    assert!(result.get("report").is_some(), "simulate embeds the report");

    let missing = client.get("/v1/jobs/99999").unwrap();
    assert_eq!(missing.status, 404);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn overload_rejects_with_429_and_retry_after() {
    // One worker, one queue slot: flooding with async jobs must trip
    // admission control on some of them.
    let (addr, handle, join) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_secs: 2,
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(&addr).unwrap();
    let mut accepted = 0;
    let mut rejected = 0;
    for i in 0..24 {
        // Distinct widths defeat the result cache, and the frame is
        // large enough that the lone worker falls behind the
        // submission rate.
        let body = format!(
            r#"{{"width": {}, "height": 48, "spp": 2, "async": true}}"#,
            64 + i
        );
        let resp = client.post("/v1/render", &body).unwrap();
        match resp.status {
            202 => accepted += 1,
            429 => {
                rejected += 1;
                assert_eq!(resp.header("retry-after"), Some("2"));
                let doc = parse_json(&resp.text()).unwrap();
                assert_eq!(
                    doc.get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(|c| c.as_str()),
                    Some("queue_full")
                );
            }
            other => panic!("unexpected status {other}: {}", resp.text()),
        }
    }
    assert!(accepted > 0, "some jobs must be admitted");
    assert!(rejected > 0, "overload must produce 429s");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn protocol_limits_hold_over_real_sockets() {
    let (addr, handle, join) = start(ServeConfig {
        limits: Limits {
            max_header_bytes: 512,
            max_body_bytes: 256,
        },
        ..ServeConfig::default()
    });

    // Oversized body → 413.
    let mut client = HttpClient::connect(&addr).unwrap();
    let big = format!(r#"{{"pad": "{}"}}"#, "x".repeat(1000));
    let resp = client.post("/v1/render", &big).unwrap();
    assert_eq!(resp.status, 413);

    // Oversized headers → 431 (fresh connection: limit errors close).
    let mut client = HttpClient::connect(&addr).unwrap();
    let resp = client
        .request("GET", &format!("/healthz?{}", "q".repeat(1000)), None)
        .unwrap();
    assert_eq!(resp.status, 431);

    // Unknown method on a known route → 405 + Allow.
    let mut client = HttpClient::connect(&addr).unwrap();
    let resp = client.request("DELETE", "/v1/render", None).unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("POST"));

    // Unknown route → 404; malformed JSON → 400.
    let mut client = HttpClient::connect(&addr).unwrap();
    assert_eq!(client.get("/v1/nope").unwrap().status, 404);
    assert_eq!(client.post("/v1/render", "{oops").unwrap().status, 400);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn graceful_drain_finishes_admitted_work() {
    let (addr, handle, join) = start(ServeConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServeConfig::default()
    });
    let mut client = HttpClient::connect(&addr).unwrap();
    // Admit a batch of async jobs, then immediately request the drain.
    let mut ids = Vec::new();
    for i in 0..4 {
        let body = format!(
            r#"{{"width": 8, "height": 6, "spp": {}, "async": true}}"#,
            1 + i
        );
        let resp = client.post("/v1/render", &body).unwrap();
        assert_eq!(resp.status, 202, "{}", resp.text());
        ids.push(
            parse_json(&resp.text())
                .unwrap()
                .get("id")
                .and_then(|v| v.as_f64())
                .unwrap() as u64,
        );
    }
    handle.shutdown();
    join.join().unwrap();

    // After run() returns, every admitted job has completed and the
    // final snapshot says so.
    let doc = parse_json(&handle.metrics_json()).unwrap();
    let jobs = doc.get("jobs").unwrap();
    assert_eq!(
        jobs.get("draining").unwrap(),
        &cooprt_telemetry::JsonValue::Bool(true)
    );
    assert_eq!(
        jobs.get("submitted").unwrap().as_f64(),
        Some(ids.len() as f64)
    );
    assert_eq!(
        jobs.get("completed").unwrap().as_f64(),
        Some(ids.len() as f64),
        "drain must finish admitted work: {doc:?}"
    );
    assert_eq!(jobs.get("queued").unwrap().as_f64(), Some(0.0));

    // New connections are refused outright once the listener is gone.
    assert!(HttpClient::connect(&addr).is_err());
}

#[test]
fn full_observability_does_not_perturb_response_bytes() {
    // The no-perturbation invariant, end to end: a server with every
    // layer of telemetry enabled (trace-level logging, request spans)
    // must produce response bodies bitwise identical to a server with
    // all of it off.
    let logger = Logger::to_buffer("trace").unwrap();
    let (loud_addr, loud_handle, loud_join) = start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        request_spans: true,
        logger: logger.clone(),
        ..ServeConfig::default()
    });
    let (quiet_addr, quiet_handle, quiet_join) = start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        request_spans: false,
        logger: Logger::disabled(),
        ..ServeConfig::default()
    });

    let job = r#"{"width": 8, "height": 6, "scene": "bunny", "trace": true}"#;
    let mut loud = HttpClient::connect(&loud_addr).unwrap();
    let mut quiet = HttpClient::connect(&quiet_addr).unwrap();
    let mut miss_id = String::new();
    for target in ["/v1/render", "/v1/simulate"] {
        let a = loud.post(target, job).unwrap();
        let b = quiet.post(target, job).unwrap();
        assert_eq!(a.status, 200, "{}", a.text());
        assert_eq!(b.status, 200, "{}", b.text());
        assert_eq!(a.body, b.body, "telemetry must not perturb {target}");
        if target == "/v1/render" {
            miss_id = a.header("x-request-id").unwrap().to_string();
        }
    }

    // The cache-missing request's span trail has the full pipeline and
    // is valid Chrome trace JSON; a cache hit's trail stops at the
    // result-cache lookup.
    let spans = loud.get(&format!("/v1/spans/{miss_id}")).unwrap();
    assert_eq!(spans.status, 200, "{}", spans.text());
    validate_chrome_trace(&spans.text()).expect("span export validates");
    for name in [
        "parse",
        "queue_wait",
        "result_cache",
        "engine_run",
        "serialize",
    ] {
        assert!(spans.text().contains(name), "missing span '{name}'");
    }
    let hit = loud.post("/v1/render", job).unwrap();
    assert_eq!(hit.header("x-cache"), Some("hit"));
    let hit_id = hit.header("x-request-id").unwrap().to_string();
    let hit_spans = loud.get(&format!("/v1/spans/{hit_id}")).unwrap();
    validate_chrome_trace(&hit_spans.text()).expect("hit span export validates");
    assert!(hit_spans.text().contains("result_cache"));
    assert!(!hit_spans.text().contains("engine_run"));

    // The Prometheus exposition negotiates and validates.
    let prom = loud.get_accept("/metrics", "text/plain").unwrap();
    assert_eq!(prom.status, 200);
    assert!(prom
        .header("content-type")
        .is_some_and(|ct| ct.starts_with("text/plain")));
    validate_prometheus(&prom.text()).expect("prometheus exposition validates");
    assert!(prom.text().contains("cooprt_slo_attainment"));
    // JSON remains the default for clients that don't ask.
    let json = loud.get("/metrics").unwrap();
    parse_json(&json.text()).expect("JSON metrics still default");

    loud_handle.shutdown();
    quiet_handle.shutdown();
    loud_join.join().unwrap();
    quiet_join.join().unwrap();

    // Every captured log line is one parsable JSON object with the
    // schema fields, and the request path actually logged.
    let lines = logger.captured();
    assert!(!lines.is_empty(), "trace-level logging captures lines");
    for line in &lines {
        let doc = parse_json(line).expect("log line parses with the in-tree parser");
        for key in ["ts_us", "level", "target", "msg"] {
            assert!(doc.get(key).is_some(), "log line missing '{key}': {line}");
        }
    }
    assert!(lines.iter().any(|l| l.contains("\"serve::server\"")));
    assert!(lines.iter().any(|l| l.contains("\"serve::queue\"")));
    assert!(lines.iter().any(|l| l.contains("\"serve::exec\"")));
}
