//! A bucketed event calendar (two-level time wheel) for simulation
//! events keyed on their completion cycle.
//!
//! The hot structures of the simulator — pending memory responses in
//! each RT unit, and the engine's per-SM wake-up times — are priority
//! queues whose keys are *cycles*: dense, monotonically consumed, and
//! clustered within a short horizon (cache/DRAM latencies). A
//! comparison-based heap pays `O(log n)` plus pointer churn per event;
//! this calendar instead hashes events into per-cycle buckets:
//!
//! - a **near wheel** of [`NEAR_SPAN`] one-cycle buckets covering
//!   `[near_base, near_base + NEAR_SPAN)` — push and pop are O(1)
//!   (bucket index arithmetic plus a 4-word occupancy bitmap scan);
//! - a **far level** holding everything beyond the wheel in insertion
//!   order with a cached minimum — when the wheel drains, it rebases
//!   onto the earliest far event and the far level cascades down.
//!
//! Events at the same cycle pop in push (FIFO) order, which is what
//! keeps simulation results bitwise identical to the old
//! `BinaryHeap<(cycle, seq, ..)>` representation: the sequence number is
//! now implicit in bucket order.

use std::collections::VecDeque;

/// Width of the near wheel, in cycles. Covers every cache latency of
/// Table 1 and typical DRAM queueing; deeper backlogs overflow to the
/// far level and cascade back as the wheel advances.
const NEAR_SPAN: usize = 256;
const NEAR_WORDS: usize = NEAR_SPAN / 64;

/// A min-priority queue over `(cycle, payload)` with FIFO order among
/// events of the same cycle.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::EventCalendar;
///
/// let mut cal = EventCalendar::new();
/// cal.push(30, "dram fill");
/// cal.push(10, "l2 fill");
/// cal.push(10, "second l2 fill");
/// assert_eq!(cal.peek_min(), Some(10));
/// assert_eq!(cal.pop_next(), Some((10, "l2 fill"))); // FIFO within a cycle
/// assert_eq!(cal.pop_next(), Some((10, "second l2 fill")));
/// assert_eq!(cal.pop_ready(20), None); // next event is at cycle 30
/// assert_eq!(cal.pop_ready(30), Some((30, "dram fill")));
/// assert!(cal.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct EventCalendar<T> {
    /// One-cycle buckets; bucket `i` holds events at `near_base + i`.
    near: Vec<VecDeque<T>>,
    /// Bit `i` set ⇔ `near[i]` is non-empty.
    near_mask: [u64; NEAR_WORDS],
    near_base: u64,
    /// Events at `near_base + NEAR_SPAN` or later (and, rarely, events
    /// pushed *before* a rebased wheel), in insertion order.
    far: Vec<(u64, T)>,
    /// Cached minimum cycle over `far`; `u64::MAX` when `far` is empty.
    far_min: u64,
    len: usize,
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventCalendar<T> {
    /// Creates an empty calendar starting at cycle 0.
    pub fn new() -> Self {
        EventCalendar {
            near: (0..NEAR_SPAN).map(|_| VecDeque::new()).collect(),
            near_mask: [0; NEAR_WORDS],
            near_base: 0,
            far: Vec::new(),
            far_min: u64::MAX,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queues `value` at `cycle`.
    pub fn push(&mut self, cycle: u64, value: T) {
        self.len += 1;
        if cycle >= self.near_base && cycle - self.near_base < NEAR_SPAN as u64 {
            let idx = (cycle - self.near_base) as usize;
            self.near[idx].push_back(value);
            self.near_mask[idx / 64] |= 1 << (idx % 64);
        } else {
            // Beyond the wheel — or (after a far-future rebase) before
            // it; both are correct in the far level.
            self.far_min = self.far_min.min(cycle);
            self.far.push((cycle, value));
        }
    }

    /// Earliest queued cycle, if any.
    pub fn peek_min(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match self.near_min() {
            Some(idx) => Some((self.near_base + idx as u64).min(self.far_min)),
            None => Some(self.far_min),
        }
    }

    /// Removes and returns the earliest event (FIFO among events of the
    /// same cycle).
    pub fn pop_next(&mut self) -> Option<(u64, T)> {
        let min = self.peek_min()?;
        // The wheel and the far level never hold the same cycle (far
        // events sit either beyond the window or, after a rebase,
        // strictly below it), so whichever owns `min` is unambiguous.
        if let Some(idx) = self.near_min() {
            let t = self.near_base + idx as u64;
            if t == min {
                let v = self.near[idx].pop_front().expect("bitmap said non-empty");
                if self.near[idx].is_empty() {
                    self.near_mask[idx / 64] &= !(1 << (idx % 64));
                }
                self.len -= 1;
                // Rebase an emptied wheel onto the far backlog so later
                // pops stay O(1).
                if self.near_min().is_none() && !self.far.is_empty() {
                    self.rebase();
                }
                return Some((t, v));
            }
        }
        Some(self.pop_far(min))
    }

    /// [`EventCalendar::pop_next`], but only if the earliest event is
    /// due at or before `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<(u64, T)> {
        if self.peek_min()? > now {
            return None;
        }
        self.pop_next()
    }

    /// Drops every queued event.
    pub fn clear(&mut self) {
        for b in &mut self.near {
            b.clear();
        }
        self.near_mask = [0; NEAR_WORDS];
        self.far.clear();
        self.far_min = u64::MAX;
        self.len = 0;
    }

    /// Index of the earliest non-empty near bucket.
    fn near_min(&self) -> Option<usize> {
        for (w, &m) in self.near_mask.iter().enumerate() {
            if m != 0 {
                return Some(w * 64 + m.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Removes the first far event at exactly `cycle` (FIFO order).
    fn pop_far(&mut self, cycle: u64) -> (u64, T) {
        debug_assert_eq!(cycle, self.far_min);
        let pos = self
            .far
            .iter()
            .position(|(t, _)| *t == cycle)
            .expect("far_min tracks a live far event");
        let ev = self.far.remove(pos);
        self.far_min = self.far.iter().map(|(t, _)| *t).min().unwrap_or(u64::MAX);
        self.len -= 1;
        ev
    }

    /// Moves the near window to start at the earliest far event and
    /// cascades every far event inside the new window down into it.
    fn rebase(&mut self) {
        debug_assert!(self.near_min().is_none());
        self.near_base = self.far_min;
        let mut kept = Vec::with_capacity(self.far.len());
        let mut far_min = u64::MAX;
        // Drain in insertion order: same-cycle events keep FIFO order.
        for (t, v) in self.far.drain(..) {
            if t - self.near_base < NEAR_SPAN as u64 {
                let idx = (t - self.near_base) as usize;
                self.near[idx].push_back(v);
                self.near_mask[idx / 64] |= 1 << (idx % 64);
            } else {
                far_min = far_min.min(t);
                kept.push((t, v));
            }
        }
        self.far = kept;
        self.far_min = far_min;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_calendar_has_no_events() {
        let mut c: EventCalendar<u32> = EventCalendar::new();
        assert!(c.is_empty());
        assert_eq!(c.peek_min(), None);
        assert_eq!(c.pop_next(), None);
        assert_eq!(c.pop_ready(1_000_000), None);
    }

    #[test]
    fn pops_in_cycle_order_fifo_within_a_cycle() {
        let mut c = EventCalendar::new();
        c.push(5, 'b');
        c.push(3, 'a');
        c.push(5, 'c');
        c.push(900, 'e'); // far level
        c.push(5, 'd');
        assert_eq!(c.len(), 5);
        assert_eq!(c.pop_next(), Some((3, 'a')));
        assert_eq!(c.pop_next(), Some((5, 'b')));
        assert_eq!(c.pop_next(), Some((5, 'c')));
        assert_eq!(c.pop_next(), Some((5, 'd')));
        assert_eq!(c.pop_next(), Some((900, 'e')));
        assert!(c.is_empty());
    }

    #[test]
    fn pop_ready_respects_now() {
        let mut c = EventCalendar::new();
        c.push(10, ());
        assert_eq!(c.pop_ready(9), None);
        assert_eq!(c.pop_ready(10), Some((10, ())));
    }

    #[test]
    fn far_events_cascade_into_the_wheel() {
        let mut c = EventCalendar::new();
        // Everything far beyond the initial window.
        for i in 0..10u64 {
            c.push(10_000 + i * 100, i);
        }
        for i in 0..10u64 {
            assert_eq!(c.pop_next(), Some((10_000 + i * 100, i)));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn push_before_a_rebased_wheel_still_pops_in_order() {
        let mut c = EventCalendar::new();
        c.push(5_000, 'z');
        assert_eq!(c.pop_next(), Some((5_000, 'z'))); // rebases to 5 000
        c.push(5_010, 'b');
        // An earlier event arrives after the rebase (e.g. an SM woken by
        // another queue issues a fetch completing sooner).
        c.push(4_900, 'a');
        assert_eq!(c.peek_min(), Some(4_900));
        assert_eq!(c.pop_next(), Some((4_900, 'a')));
        assert_eq!(c.pop_next(), Some((5_010, 'b')));
    }

    #[test]
    fn interleaved_push_pop_matches_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut cal = EventCalendar::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for step in 0..50_000u64 {
            let r = rand();
            if r % 3 != 0 {
                // Push at now + latency; occasionally very far out.
                let lat = match r % 7 {
                    0 => 2_000 + r % 5_000, // saturated-DRAM backlog
                    _ => 1 + r % 300,
                };
                seq += 1;
                cal.push(now + lat, seq);
                heap.push(Reverse((now + lat, seq)));
            } else {
                let got = cal.pop_ready(now);
                let want = match heap.peek() {
                    Some(&Reverse((t, s))) if t <= now => {
                        heap.pop();
                        Some((t, s))
                    }
                    _ => None,
                };
                assert_eq!(got, want, "divergence at step {step}, now {now}");
            }
            // Advance time like the engine does: sometimes +1, sometimes
            // skipping straight to the next event.
            now += match r % 5 {
                0 => cal.peek_min().map_or(1, |t| t.saturating_sub(now).max(1)),
                _ => 1,
            };
            assert_eq!(cal.len(), heap.len());
            assert_eq!(
                cal.peek_min(),
                heap.peek().map(|&Reverse((t, _))| t),
                "peek divergence at step {step}"
            );
        }
    }

    #[test]
    fn horizon_boundary_routes_to_far_and_cascades_back() {
        // An event at exactly `near_base + NEAR_SPAN` is one past the
        // wheel and must take the far path; one cycle earlier is the
        // last near bucket. Both must pop in order, and the horizon
        // event must cascade into the wheel when it rebases.
        let mut c = EventCalendar::new();
        let horizon = NEAR_SPAN as u64; // near_base is 0
        c.push(horizon, 'f');
        c.push(horizon - 1, 'n');
        assert_eq!(c.peek_min(), Some(horizon - 1));
        assert_eq!(c.pop_next(), Some((horizon - 1, 'n')));
        // Popping the last near event empties the wheel, which rebases
        // onto the far minimum — the horizon event is now bucket 0.
        assert_eq!(c.peek_min(), Some(horizon));
        assert_eq!(c.pop_next(), Some((horizon, 'f')));
        assert!(c.is_empty());

        // Same boundary after a rebase to a non-zero base.
        c.push(10_000, 'z');
        assert_eq!(c.pop_next(), Some((10_000, 'z'))); // base is now 10 000
        c.push(10_000 + horizon, 'g'); // exactly on the new horizon: far
        c.push(10_000 + horizon - 1, 'm'); // last near bucket
        assert_eq!(c.pop_next(), Some((10_000 + horizon - 1, 'm')));
        assert_eq!(c.pop_next(), Some((10_000 + horizon, 'g')));
        assert!(c.is_empty());
    }

    #[test]
    fn far_min_recomputes_as_the_far_list_drains() {
        // Below-window events (pushed after a far-future rebase) live in
        // the far list and are popped via `pop_far`, which must
        // recompute the cached minimum after each removal — including
        // down to `u64::MAX` when the list empties.
        let mut c = EventCalendar::new();
        c.push(5_000, 'z');
        assert_eq!(c.pop_next(), Some((5_000, 'z'))); // wheel rebased to 5 000
        c.push(4_700, 'a');
        c.push(4_900, 'c');
        c.push(4_800, 'b');
        c.push(4_700, 'd'); // same cycle as 'a': FIFO behind it
        assert_eq!(c.peek_min(), Some(4_700));
        assert_eq!(c.pop_next(), Some((4_700, 'a')));
        assert_eq!(c.peek_min(), Some(4_700), "same-cycle event still queued");
        assert_eq!(c.pop_next(), Some((4_700, 'd')));
        assert_eq!(c.peek_min(), Some(4_800), "minimum recomputed after drain");
        assert_eq!(c.pop_next(), Some((4_800, 'b')));
        assert_eq!(c.pop_next(), Some((4_900, 'c')));
        assert_eq!(c.peek_min(), None, "cached minimum cleared when empty");
        // The calendar must remain fully usable after the far list hit
        // empty (far_min back at the sentinel).
        c.push(4_999, 'e'); // still below the rebased window: far again
        c.push(5_001, 'f'); // in the wheel
        assert_eq!(c.pop_next(), Some((4_999, 'e')));
        assert_eq!(c.pop_next(), Some((5_001, 'f')));
        assert!(c.is_empty());
    }

    #[test]
    fn same_cycle_fifo_survives_a_near_far_cascade() {
        // Events at one cycle can arrive by two routes: pushed directly
        // into the wheel, or pushed beyond the horizon and cascaded in
        // by a rebase. FIFO order among them must reflect push order
        // regardless of route — this is what keeps simulations bitwise
        // reproducible.
        let mut c = EventCalendar::new();
        c.push(10, 'a');
        c.push(300, 'b'); // beyond the horizon: far list
        c.push(300, 'c'); // far list, behind 'b'
        assert_eq!(c.pop_next(), Some((10, 'a'))); // empties wheel, rebases to 300
        c.push(300, 'd'); // now lands directly in the wheel, behind b, c
        c.push(301, 'e');
        assert_eq!(c.pop_next(), Some((300, 'b')));
        assert_eq!(c.pop_next(), Some((300, 'c')));
        assert_eq!(c.pop_next(), Some((300, 'd')));
        assert_eq!(c.pop_next(), Some((301, 'e')));
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut c = EventCalendar::new();
        c.push(1, 1);
        c.push(10_000, 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.peek_min(), None);
        c.push(3, 9);
        assert_eq!(c.pop_next(), Some((3, 9)));
    }
}
