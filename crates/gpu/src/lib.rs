//! GPU memory-hierarchy and power substrate for the CoopRT reproduction.
//!
//! The paper evaluates CoopRT inside Vulkan-sim / GPGPU-sim, whose memory
//! system (per-SM L1, shared L2 over a crossbar, multi-channel DRAM) and
//! GpuWattch power model are the substrate for every result. This crate
//! rebuilds that substrate:
//!
//! - [`Cache`] — set-associative / fully-associative LRU caches with the
//!   paper's Table 1 parameters;
//! - [`Dram`] — a multi-channel DRAM model with per-channel queueing and
//!   finite bandwidth (the bottleneck in the mobile configuration of
//!   Fig. 18);
//! - [`MemoryHierarchy`] — the L1 → L2 → DRAM path that node fetches
//!   travel, with the bandwidth counters behind Fig. 12 and the miss
//!   rates behind Fig. 16;
//! - [`PowerModel`] — a GpuWattch-style event-energy + leakage model
//!   behind the power/energy/EDP results of Figs. 9, 15 and 18;
//! - [`EventCalendar`] — a bucketed time wheel used by the simulation
//!   core to pop pending memory responses and SM wake-ups in O(1).
//!
//! # Examples
//!
//! ```
//! use cooprt_gpu::{MemoryConfig, MemoryHierarchy};
//!
//! let mut mem = MemoryHierarchy::new(&MemoryConfig::rtx2060_like(2));
//! // A cold access goes L1 -> L2 -> DRAM.
//! let t1 = mem.access(0, 0x1000, 64, 0);
//! // Re-accessing the same line hits in L1 and is much faster.
//! let t2 = mem.access(0, 0x1000, 64, t1) - t1;
//! assert!(t2 < t1);
//! ```

mod cache;
mod calendar;
mod config;
mod dram;
mod hierarchy;
mod mshr;
mod power;

pub use cache::{Cache, CacheStats};
pub use calendar::EventCalendar;
pub use config::MemoryConfig;
pub use dram::{Dram, DramStats};
pub use hierarchy::{MemStats, MemoryHierarchy};
pub use mshr::{Mshr, MshrStats};
pub use power::{EnergyEvents, EnergyReport, PowerModel};
