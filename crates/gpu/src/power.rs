//! GpuWattch-style power and energy model.
//!
//! The paper uses GpuWattch (shipped with Vulkan-sim) to report the
//! power, energy and EDP results of Figs. 9, 15 and 18. GpuWattch is an
//! event-energy model: every architectural event (cache access, DRAM
//! transfer, functional-unit operation) costs a fixed dynamic energy, and
//! leakage accrues per cycle. This module reproduces that structure with
//! per-event energies in the right relative proportions; absolute watts
//! are not meaningful (nor are they in the paper's normalized figures).

use crate::MemStats;

/// Counts of energy-consuming events gathered during a simulation.
///
/// Memory events come from [`MemStats`]; compute events are incremented
/// by the RT-unit model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnergyEvents {
    /// Ray/box intersection tests.
    pub box_tests: u64,
    /// Ray/triangle intersection tests.
    pub triangle_tests: u64,
    /// Traversal-stack pushes and pops.
    pub stack_ops: u64,
    /// Load Balancing Unit node transfers (CoopRT only).
    pub lbu_moves: u64,
    /// Warp-scheduler decisions in the RT unit.
    pub scheduler_ops: u64,
    /// `trace_ray` instructions dispatched to RT units.
    pub trace_instructions: u64,
    /// Ray-path predictor table accesses (lookups and updates).
    pub predict_lookups: u64,
}

impl EnergyEvents {
    /// Accumulates another event set into this one.
    pub fn add(&mut self, other: &EnergyEvents) {
        self.box_tests += other.box_tests;
        self.triangle_tests += other.triangle_tests;
        self.stack_ops += other.stack_ops;
        self.lbu_moves += other.lbu_moves;
        self.scheduler_ops += other.scheduler_ops;
        self.trace_instructions += other.trace_instructions;
        self.predict_lookups += other.predict_lookups;
    }
}

/// Per-event energies (picojoules) and leakage (watts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Energy per L1 access, pJ.
    pub l1_access_pj: f64,
    /// Energy per L2 access, pJ.
    pub l2_access_pj: f64,
    /// Energy per byte transferred from DRAM, pJ.
    pub dram_byte_pj: f64,
    /// Energy per ray/box test, pJ.
    pub box_test_pj: f64,
    /// Energy per ray/triangle test, pJ.
    pub triangle_test_pj: f64,
    /// Energy per stack operation, pJ.
    pub stack_op_pj: f64,
    /// Energy per LBU node move, pJ.
    pub lbu_move_pj: f64,
    /// Energy per scheduler decision, pJ.
    pub scheduler_op_pj: f64,
    /// Energy per ray-path predictor table access, pJ.
    pub predict_lookup_pj: f64,
    /// Static (leakage) power per SM, watts.
    pub leakage_w_per_sm: f64,
}

impl PowerModel {
    /// Energies in GpuWattch-like proportions for a 12 nm desktop part.
    ///
    /// The tracked events are *proxies* for total switching activity:
    /// GpuWattch also charges instruction fetch/decode, register-file
    /// and operand-collector activity per operation, so each tracked
    /// event here carries the energy of the whole pipeline slice it
    /// represents. The calibration target is the paper's Fig. 9 energy
    /// balance — dynamic energy ≈ 8x leakage at baseline, which yields
    /// the reported "power ~2x, energy ~0.94x" shape when CoopRT halves
    /// the runtime at constant traversal work.
    pub fn gpuwattch_like() -> Self {
        PowerModel {
            l1_access_pj: 250.0,
            l2_access_pj: 900.0,
            dram_byte_pj: 150.0,
            box_test_pj: 80.0,
            triangle_test_pj: 200.0,
            stack_op_pj: 15.0,
            lbu_move_pj: 30.0,
            scheduler_op_pj: 20.0,
            // A few-KiB direct-mapped SRAM read: an order of magnitude
            // cheaper than L1, in line with Demoullin et al.'s sizing.
            predict_lookup_pj: 10.0,
            leakage_w_per_sm: 0.08,
        }
    }

    /// Computes the energy report for one simulation.
    ///
    /// `cycles` is the simulated duration; `sm_count` and
    /// `core_clock_mhz` convert leakage power into energy.
    pub fn report(
        &self,
        events: &EnergyEvents,
        mem: &MemStats,
        cycles: u64,
        sm_count: usize,
        core_clock_mhz: f64,
    ) -> EnergyReport {
        let dynamic_pj = events.box_tests as f64 * self.box_test_pj
            + events.triangle_tests as f64 * self.triangle_test_pj
            + events.stack_ops as f64 * self.stack_op_pj
            + events.lbu_moves as f64 * self.lbu_move_pj
            + events.scheduler_ops as f64 * self.scheduler_op_pj
            + events.predict_lookups as f64 * self.predict_lookup_pj
            + mem.l1.accesses as f64 * self.l1_access_pj
            + mem.l2.accesses as f64 * self.l2_access_pj
            + mem.dram_bytes as f64 * self.dram_byte_pj;
        let seconds = cycles as f64 / (core_clock_mhz * 1.0e6);
        let static_j = self.leakage_w_per_sm * sm_count as f64 * seconds;
        let dynamic_j = dynamic_pj * 1.0e-12;
        EnergyReport {
            dynamic_j,
            static_j,
            seconds,
            cycles,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::gpuwattch_like()
    }
}

/// Energy/power/EDP summary of one simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Dynamic (event) energy, joules.
    pub dynamic_j: f64,
    /// Static (leakage) energy, joules.
    pub static_j: f64,
    /// Simulated wall time, seconds.
    pub seconds: f64,
    /// Simulated duration in core cycles.
    pub cycles: u64,
}

impl EnergyReport {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }

    /// Average power, watts.
    pub fn avg_power_w(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.total_j() / self.seconds
        }
    }

    /// Energy-delay product, joule-seconds (lower is better).
    pub fn edp(&self) -> f64 {
        self.total_j() * self.seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheStats;

    fn mem(l1: u64, l2: u64, dram_bytes: u64) -> MemStats {
        MemStats {
            l1: CacheStats {
                accesses: l1,
                hits: 0,
            },
            l2: CacheStats {
                accesses: l2,
                hits: 0,
            },
            dram: Default::default(),
            l2_bytes: 0,
            dram_bytes,
            prefetches: 0,
            l1_mshr: Default::default(),
            l2_mshr: Default::default(),
        }
    }

    #[test]
    fn dynamic_energy_scales_with_events() {
        let pm = PowerModel::gpuwattch_like();
        let mut e = EnergyEvents {
            box_tests: 1000,
            ..Default::default()
        };
        let r1 = pm.report(&e, &mem(0, 0, 0), 1000, 1, 1000.0);
        e.box_tests = 2000;
        let r2 = pm.report(&e, &mem(0, 0, 0), 1000, 1, 1000.0);
        assert!((r2.dynamic_j - 2.0 * r1.dynamic_j).abs() < 1e-18);
    }

    #[test]
    fn static_energy_scales_with_time_and_sms() {
        let pm = PowerModel::gpuwattch_like();
        let e = EnergyEvents::default();
        let r1 = pm.report(&e, &mem(0, 0, 0), 1000, 1, 1000.0);
        let r2 = pm.report(&e, &mem(0, 0, 0), 2000, 1, 1000.0);
        let r3 = pm.report(&e, &mem(0, 0, 0), 1000, 2, 1000.0);
        assert!((r2.static_j - 2.0 * r1.static_j).abs() < 1e-15);
        assert!((r3.static_j - 2.0 * r1.static_j).abs() < 1e-15);
    }

    #[test]
    fn same_work_in_less_time_raises_power_lowers_energy() {
        // CoopRT's Fig. 9 shape: identical dynamic work, half the cycles.
        let pm = PowerModel::gpuwattch_like();
        let e = EnergyEvents {
            box_tests: 1_000_000,
            triangle_tests: 100_000,
            ..Default::default()
        };
        let m = mem(500_000, 100_000, 1_000_000);
        let slow = pm.report(&e, &m, 2_000_000, 30, 1365.0);
        let fast = pm.report(&e, &m, 1_000_000, 30, 1365.0);
        assert!(fast.avg_power_w() > slow.avg_power_w());
        assert!(fast.total_j() < slow.total_j());
        assert!(fast.edp() < slow.edp());
    }

    #[test]
    fn report_arithmetic() {
        let r = EnergyReport {
            dynamic_j: 3.0,
            static_j: 1.0,
            seconds: 2.0,
            cycles: 100,
        };
        assert_eq!(r.total_j(), 4.0);
        assert_eq!(r.avg_power_w(), 2.0);
        assert_eq!(r.edp(), 8.0);
        let zero = EnergyReport {
            dynamic_j: 0.0,
            static_j: 0.0,
            seconds: 0.0,
            cycles: 0,
        };
        assert_eq!(zero.avg_power_w(), 0.0);
    }

    #[test]
    fn events_accumulate() {
        let mut a = EnergyEvents {
            box_tests: 1,
            triangle_tests: 2,
            ..Default::default()
        };
        let b = EnergyEvents {
            box_tests: 10,
            lbu_moves: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.box_tests, 11);
        assert_eq!(a.triangle_tests, 2);
        assert_eq!(a.lbu_moves, 5);
    }

    #[test]
    fn lbu_energy_is_small_relative_to_memory() {
        // The paper's premise: CoopRT's added hardware is cheap. One LBU
        // move must cost far less than one L2 access.
        let pm = PowerModel::gpuwattch_like();
        assert!(pm.lbu_move_pj * 10.0 < pm.l2_access_pj);
    }

    #[test]
    fn predict_energy_is_small_relative_to_l1() {
        // The predictor only pays off if a table access is much cheaper
        // than the L1 node fetches it avoids.
        let pm = PowerModel::gpuwattch_like();
        assert!(pm.predict_lookup_pj * 10.0 <= pm.l1_access_pj);
        let e = EnergyEvents {
            predict_lookups: 1_000,
            ..Default::default()
        };
        let r = pm.report(&e, &mem(0, 0, 0), 1000, 1, 1000.0);
        assert!(r.dynamic_j > 0.0);
    }
}
