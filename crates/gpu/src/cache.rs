//! Set-associative / fully-associative LRU caches.

use std::collections::{BTreeMap, HashMap};

/// Hit/miss counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line accesses.
    pub accesses: u64,
    /// Line accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// One cache set with true-LRU replacement.
///
/// Uses a stamp map plus an ordered index, so even the fully-associative
/// 512-line L1 of Table 1 replaces in `O(log n)`.
#[derive(Clone, Debug, Default)]
struct CacheSet {
    /// tag -> last-use stamp.
    lines: HashMap<u64, u64>,
    /// last-use stamp -> tag (stamps are unique).
    order: BTreeMap<u64, u64>,
}

impl CacheSet {
    fn touch(&mut self, tag: u64, stamp: u64, capacity: usize) -> bool {
        if let Some(old) = self.lines.insert(tag, stamp) {
            self.order.remove(&old);
            self.order.insert(stamp, tag);
            return true;
        }
        self.order.insert(stamp, tag);
        if self.lines.len() > capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("set not empty");
            self.order.remove(&oldest);
            self.lines.remove(&victim);
        }
        false
    }
}

/// An LRU cache over fixed-size lines.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::Cache;
///
/// // 2 lines of 64 B, fully associative.
/// let mut c = Cache::new(128, 0, 64);
/// assert!(!c.access_line(0));      // cold miss
/// assert!(c.access_line(0));       // hit
/// assert!(!c.access_line(64));     // cold miss
/// assert!(!c.access_line(128));    // miss, evicts line 0 (LRU)
/// assert!(!c.access_line(0));      // line 0 was evicted
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<CacheSet>,
    set_count: u64,
    capacity_per_set: usize,
    line_bytes: u32,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `total_bytes` with `assoc`-way sets of
    /// `line_bytes` lines. `assoc == 0` means fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero lines, or associativity
    /// exceeding the line count).
    pub fn new(total_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        let total_lines = (total_bytes / line_bytes as u64) as usize;
        assert!(total_lines > 0, "cache must hold at least one line");
        let (set_count, capacity_per_set) = if assoc == 0 {
            (1, total_lines)
        } else {
            let assoc = assoc as usize;
            assert!(assoc <= total_lines, "associativity exceeds line count");
            (total_lines / assoc, assoc)
        };
        assert!(set_count > 0);
        Cache {
            sets: vec![CacheSet::default(); set_count],
            set_count: set_count as u64,
            capacity_per_set,
            line_bytes,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line at `line_addr` (any byte address within the
    /// line). Returns `true` on hit; on miss the line is filled,
    /// evicting the set's LRU line if needed.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        let line = line_addr / self.line_bytes as u64;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        self.stamp += 1;
        let hit = self.sets[set].touch(tag, self.stamp, self.capacity_per_set);
        self.stats.accesses += 1;
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// First line index and count of lines covering `[addr, addr+bytes)`.
    pub fn lines_covering(&self, addr: u64, bytes: u32) -> (u64, u64) {
        let lb = self.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + bytes.max(1) as u64 - 1) / lb;
        (first, last - first + 1)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.lines.clear();
            s.order.clear();
        }
        self.stamp = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access_line(0x100));
        assert!(c.access_line(0x100));
        assert!(c.access_line(0x13f)); // same 64B line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set of 2 ways: lines 0 and 2 map to set 0 (2 sets? no:
        // 256B / 64B = 4 lines, 2-way -> 2 sets). Use addresses mapping
        // to the same set: lines 0, 2, 4 (all even -> set 0).
        let mut c = Cache::new(256, 2, 64);
        assert!(!c.access_line(0));
        assert!(!c.access_line(2 * 64));
        assert!(c.access_line(0)); // touch 0: now 2 is LRU
        assert!(!c.access_line(4 * 64)); // evicts 2
        assert!(c.access_line(0)); // still resident
        assert!(!c.access_line(2 * 64)); // was evicted
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(256, 2, 64); // 2 sets
        assert!(!c.access_line(0)); // set 0
        assert!(!c.access_line(64)); // set 1
        assert!(!c.access_line(2 * 64)); // set 0
        assert!(!c.access_line(3 * 64)); // set 1
                                         // All four lines fit: everything hits now.
        for l in 0..4u64 {
            assert!(c.access_line(l * 64), "line {l} should be resident");
        }
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = Cache::new(4 * 64, 0, 64);
        for l in 0..4u64 {
            assert!(!c.access_line(l * 64));
        }
        for l in 0..4u64 {
            assert!(c.access_line(l * 64));
        }
        // Fifth distinct line evicts the LRU (line 0).
        assert!(!c.access_line(4 * 64));
        assert!(!c.access_line(0));
    }

    #[test]
    fn miss_rate_math() {
        let mut c = Cache::new(1024, 0, 64);
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access_line(0);
        c.access_line(0);
        c.access_line(64);
        c.access_line(128);
        let s = c.stats();
        assert_eq!(s.misses(), 3);
        assert!((s.miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lines_covering_spans() {
        let c = Cache::new(1024, 0, 64);
        assert_eq!(c.lines_covering(0, 64), (0, 1));
        assert_eq!(c.lines_covering(0, 65), (0, 2));
        assert_eq!(c.lines_covering(60, 8), (0, 2));
        assert_eq!(c.lines_covering(128, 1), (2, 1));
        assert_eq!(c.lines_covering(128, 0), (2, 1)); // degenerate read
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = Cache::new(256, 0, 64);
        c.access_line(0);
        c.access_line(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access_line(0), "contents must be cold after reset");
    }

    #[test]
    #[should_panic(expected = "associativity exceeds")]
    fn rejects_overwide_assoc() {
        let _ = Cache::new(128, 4, 64);
    }

    #[test]
    fn repeated_scan_larger_than_cache_always_misses() {
        // A cyclic scan over 2x the capacity with true LRU never hits.
        let mut c = Cache::new(4 * 64, 0, 64);
        for _ in 0..3 {
            for l in 0..8u64 {
                c.access_line(l * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }
}
