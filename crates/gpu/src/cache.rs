//! Set-associative / fully-associative LRU caches over flat way arrays.
//!
//! The tag store is two dense arrays (`tags`, `stamps`) indexed by
//! `set * ways + way` — a hit is a linear tag probe over the set's ways
//! and an eviction is an `O(ways)` min-stamp scan. No maps, no
//! per-access allocation: the host-side representation is cache-friendly
//! while the *modelled* behaviour (true LRU over unique stamps) is
//! bitwise identical to the previous map-based implementation, which is
//! what the golden-cycles regression suite pins down.

/// Hit/miss counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total line accesses.
    pub accesses: u64,
    /// Line accesses that hit.
    pub hits: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; `0` when the cache was never accessed.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// An LRU cache over fixed-size lines.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::Cache;
///
/// // 2 lines of 64 B, fully associative.
/// let mut c = Cache::new(128, 0, 64);
/// assert!(!c.access_line(0));      // cold miss
/// assert!(c.access_line(0));       // hit
/// assert!(!c.access_line(64));     // cold miss
/// assert!(!c.access_line(128));    // miss, evicts line 0 (LRU)
/// assert!(!c.access_line(0));      // line 0 was evicted
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    /// Way tags, `set * ways + way`; meaningful only where the matching
    /// stamp is non-zero.
    tags: Box<[u64]>,
    /// Last-use stamps, same indexing; `0` marks an empty way (real
    /// stamps start at 1).
    stamps: Box<[u64]>,
    set_count: u64,
    ways: usize,
    line_bytes: u32,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `total_bytes` with `assoc`-way sets of
    /// `line_bytes` lines. `assoc == 0` means fully associative.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero lines, or associativity
    /// exceeding the line count).
    pub fn new(total_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        assert!(line_bytes > 0, "line size must be positive");
        let total_lines = (total_bytes / line_bytes as u64) as usize;
        assert!(total_lines > 0, "cache must hold at least one line");
        let (set_count, ways) = if assoc == 0 {
            (1, total_lines)
        } else {
            let assoc = assoc as usize;
            assert!(assoc <= total_lines, "associativity exceeds line count");
            (total_lines / assoc, assoc)
        };
        assert!(set_count > 0);
        Cache {
            tags: vec![0; set_count * ways].into_boxed_slice(),
            stamps: vec![0; set_count * ways].into_boxed_slice(),
            set_count: set_count as u64,
            ways,
            line_bytes,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accesses the line at `line_addr` (any byte address within the
    /// line). Returns `true` on hit; on miss the line is filled,
    /// evicting the set's LRU line if needed.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        let line = line_addr / self.line_bytes as u64;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        self.stamp += 1;
        self.stats.accesses += 1;
        let base = set * self.ways;
        let tags = &mut self.tags[base..base + self.ways];
        let stamps = &mut self.stamps[base..base + self.ways];
        // Linear tag probe (tags are unique within a set).
        for (t, s) in tags.iter().zip(stamps.iter_mut()) {
            if *s != 0 && *t == tag {
                *s = self.stamp;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill an empty way, else evict the LRU way (minimum
        // stamp; stamps are unique, so the victim is deterministic).
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (w, s) in stamps.iter().enumerate() {
            if *s == 0 {
                victim = w;
                break;
            }
            if *s < oldest {
                oldest = *s;
                victim = w;
            }
        }
        tags[victim] = tag;
        stamps[victim] = self.stamp;
        false
    }

    /// The line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// First line index and count of lines covering `[addr, addr+bytes)`.
    pub fn lines_covering(&self, addr: u64, bytes: u32) -> (u64, u64) {
        let lb = self.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + bytes.max(1) as u64 - 1) / lb;
        (first, last - first + 1)
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.stamps.fill(0);
        self.stamp = 0;
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access_line(0x100));
        assert!(c.access_line(0x100));
        assert!(c.access_line(0x13f)); // same 64B line
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set of 2 ways: lines 0 and 2 map to set 0 (2 sets? no:
        // 256B / 64B = 4 lines, 2-way -> 2 sets). Use addresses mapping
        // to the same set: lines 0, 2, 4 (all even -> set 0).
        let mut c = Cache::new(256, 2, 64);
        assert!(!c.access_line(0));
        assert!(!c.access_line(2 * 64));
        assert!(c.access_line(0)); // touch 0: now 2 is LRU
        assert!(!c.access_line(4 * 64)); // evicts 2
        assert!(c.access_line(0)); // still resident
        assert!(!c.access_line(2 * 64)); // was evicted
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = Cache::new(256, 2, 64); // 2 sets
        assert!(!c.access_line(0)); // set 0
        assert!(!c.access_line(64)); // set 1
        assert!(!c.access_line(2 * 64)); // set 0
        assert!(!c.access_line(3 * 64)); // set 1
                                         // All four lines fit: everything hits now.
        for l in 0..4u64 {
            assert!(c.access_line(l * 64), "line {l} should be resident");
        }
    }

    #[test]
    fn fully_associative_uses_whole_capacity() {
        let mut c = Cache::new(4 * 64, 0, 64);
        for l in 0..4u64 {
            assert!(!c.access_line(l * 64));
        }
        for l in 0..4u64 {
            assert!(c.access_line(l * 64));
        }
        // Fifth distinct line evicts the LRU (line 0).
        assert!(!c.access_line(4 * 64));
        assert!(!c.access_line(0));
    }

    #[test]
    fn miss_rate_math() {
        let mut c = Cache::new(1024, 0, 64);
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access_line(0);
        c.access_line(0);
        c.access_line(64);
        c.access_line(128);
        let s = c.stats();
        assert_eq!(s.misses(), 3);
        assert!((s.miss_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lines_covering_spans() {
        let c = Cache::new(1024, 0, 64);
        assert_eq!(c.lines_covering(0, 64), (0, 1));
        assert_eq!(c.lines_covering(0, 65), (0, 2));
        assert_eq!(c.lines_covering(60, 8), (0, 2));
        assert_eq!(c.lines_covering(128, 1), (2, 1));
        assert_eq!(c.lines_covering(128, 0), (2, 1)); // degenerate read
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = Cache::new(256, 0, 64);
        c.access_line(0);
        c.access_line(0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access_line(0), "contents must be cold after reset");
    }

    #[test]
    #[should_panic(expected = "associativity exceeds")]
    fn rejects_overwide_assoc() {
        let _ = Cache::new(128, 4, 64);
    }

    #[test]
    fn repeated_scan_larger_than_cache_always_misses() {
        // A cyclic scan over 2x the capacity with true LRU never hits.
        let mut c = Cache::new(4 * 64, 0, 64);
        for _ in 0..3 {
            for l in 0..8u64 {
                c.access_line(l * 64);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    /// The previous map-based implementation, kept verbatim as a
    /// reference oracle: the flat way-array cache must produce the exact
    /// same hit/miss sequence on any access stream.
    mod oracle {
        use std::collections::{BTreeMap, HashMap};

        #[derive(Clone, Debug, Default)]
        struct CacheSet {
            lines: HashMap<u64, u64>,
            order: BTreeMap<u64, u64>,
        }

        impl CacheSet {
            fn touch(&mut self, tag: u64, stamp: u64, capacity: usize) -> bool {
                if let Some(old) = self.lines.insert(tag, stamp) {
                    self.order.remove(&old);
                    self.order.insert(stamp, tag);
                    return true;
                }
                self.order.insert(stamp, tag);
                if self.lines.len() > capacity {
                    let (&oldest, &victim) = self.order.iter().next().expect("set not empty");
                    self.order.remove(&oldest);
                    self.lines.remove(&victim);
                }
                false
            }
        }

        pub struct MapCache {
            sets: Vec<CacheSet>,
            set_count: u64,
            capacity_per_set: usize,
            line_bytes: u32,
            stamp: u64,
        }

        impl MapCache {
            pub fn new(total_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
                let total_lines = (total_bytes / line_bytes as u64) as usize;
                let (set_count, capacity_per_set) = if assoc == 0 {
                    (1, total_lines)
                } else {
                    (total_lines / assoc as usize, assoc as usize)
                };
                MapCache {
                    sets: vec![CacheSet::default(); set_count],
                    set_count: set_count as u64,
                    capacity_per_set,
                    line_bytes,
                    stamp: 0,
                }
            }

            pub fn access_line(&mut self, line_addr: u64) -> bool {
                let line = line_addr / self.line_bytes as u64;
                let set = (line % self.set_count) as usize;
                let tag = line / self.set_count;
                self.stamp += 1;
                self.sets[set].touch(tag, self.stamp, self.capacity_per_set)
            }
        }
    }

    /// Tiny deterministic xorshift64* stream for the oracle tests (the
    /// workspace is offline; no external PRNG crates).
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn assert_matches_oracle(total_bytes: u64, assoc: u32, line_bytes: u32, seed: u64) {
        let mut flat = Cache::new(total_bytes, assoc, line_bytes);
        let mut oracle = oracle::MapCache::new(total_bytes, assoc, line_bytes);
        let mut state = seed;
        // A mix of streaming, looping and random accesses over an
        // address range ~4x the capacity (so evictions are frequent).
        let span = 4 * total_bytes;
        for i in 0..20_000u64 {
            let addr = match i % 3 {
                0 => xorshift(&mut state) % span,
                1 => (i * line_bytes as u64) % span, // streaming scan
                _ => ((i / 7) * line_bytes as u64) % (total_bytes / 2).max(1), // hot loop
            };
            assert_eq!(
                flat.access_line(addr),
                oracle.access_line(addr),
                "divergence at access {i} (addr {addr:#x}, geometry \
                 {total_bytes}B/{assoc}-way/{line_bytes}B lines)"
            );
        }
    }

    #[test]
    fn matches_map_oracle_set_associative() {
        assert_matches_oracle(16 * 1024, 4, 64, 0xDEAD_BEEF);
        assert_matches_oracle(8 * 1024, 2, 128, 0x1234_5678_9ABC);
        assert_matches_oracle(256, 2, 64, 7);
    }

    #[test]
    fn matches_map_oracle_fully_associative() {
        // The Table 1 L1 shape: fully associative, hundreds of lines.
        assert_matches_oracle(64 * 1024, 0, 128, 42);
        assert_matches_oracle(4 * 64, 0, 64, 99);
    }

    #[test]
    fn matches_map_oracle_sixteen_way_l2_shape() {
        // The Table 1 L2 shape (scaled down): 16-way, 128B lines.
        assert_matches_oracle(128 * 1024, 16, 128, 0xFEED_F00D);
    }
}
