//! The L1 → L2 → DRAM access path.

use crate::{Cache, CacheStats, Dram, DramStats, MemoryConfig, Mshr, MshrStats};
use cooprt_telemetry::{AccessOutcome, CacheLevel, EventKind, Tracer};

/// Aggregated memory-system statistics for one simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemStats {
    /// Combined counters of all per-SM L1 caches.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
    /// Bytes crossing the SM ↔ L2 interconnect (L1 fills).
    pub l2_bytes: u64,
    /// Bytes read from DRAM (L2 fills).
    pub dram_bytes: u64,
    /// Prefetch requests issued.
    pub prefetches: u64,
    /// Aggregated L1 MSHR counters (merged in-flight misses).
    pub l1_mshr: MshrStats,
    /// L2 MSHR counters.
    pub l2_mshr: MshrStats,
}

impl MemStats {
    /// L2 ↔ interconnect bandwidth in bytes/cycle over a window.
    pub fn l2_bandwidth(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.l2_bytes as f64 / cycles as f64
        }
    }

    /// DRAM bandwidth in bytes/cycle over a window.
    pub fn dram_bandwidth(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.dram_bytes as f64 / cycles as f64
        }
    }
}

/// The full memory hierarchy: per-SM L1s, one shared L2, multi-channel
/// DRAM.
///
/// Latency model: an access touches every cache line covering the
/// request; each line goes L1 → L2 → DRAM until it hits, accumulating
/// the per-level latencies of [`MemoryConfig`]; the request completes
/// when its slowest line arrives. Caches fill on miss (no write traffic
/// — BVH data is read-only, and hit stores go through a separate store
/// queue that is never a bottleneck, per the paper).
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1s: Vec<Cache>,
    l1_mshrs: Vec<Mshr>,
    l2: Cache,
    l2_mshr: Mshr,
    dram: Dram,
    config: MemoryConfig,
    l2_bytes: u64,
    dram_bytes: u64,
    prefetches: u64,
    tracer: Tracer,
}

impl MemoryHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &MemoryConfig) -> Self {
        let l1s = (0..config.sm_count)
            .map(|_| Cache::new(config.l1_bytes, config.l1_assoc, config.line_bytes))
            .collect();
        let l1_mshrs = (0..config.sm_count)
            .map(|_| Mshr::new(config.l1_mshr_entries.max(1)))
            .collect();
        MemoryHierarchy {
            l1s,
            l1_mshrs,
            l2: Cache::new(config.l2_bytes, config.l2_assoc, config.line_bytes),
            l2_mshr: Mshr::new(config.l2_mshr_entries.max(1)),
            dram: Dram::new(
                config.dram_channels,
                config.dram_bytes_per_cycle,
                config.dram_latency,
            ),
            config: config.clone(),
            l2_bytes: 0,
            dram_bytes: 0,
            prefetches: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Install a tracer on the hierarchy (and its DRAM): cache probes
    /// and channel-busy intervals are emitted through it. Purely
    /// observational — no latency or fill decision reads the tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.dram.set_tracer(tracer.clone());
        self.tracer = tracer;
    }

    /// Performs a read of `bytes` at `addr` from SM `sm` at time `now`.
    /// Returns the completion cycle.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: u64, bytes: u32, now: u64) -> u64 {
        let (first, count) = self.l1s[sm].lines_covering(addr, bytes);
        let mut done = now;
        for i in 0..count {
            let t = self.access_one_line(sm, first + i, now);
            done = done.max(t);
        }
        done
    }

    /// Fetches one line; returns its arrival cycle.
    fn access_one_line(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        let line_bytes = self.config.line_bytes as u64;
        let line_addr = line * line_bytes;
        let mut t = now + self.config.l1_latency;
        let l1_hit = self.l1s[sm].access_line(line_addr);
        if let Some(fill_done) = self.l1_mshrs[sm].lookup(line, now) {
            // The line's fill is still in flight (a prefetch or an
            // earlier miss): whether the tag already matched or not,
            // the data arrives only when the fill lands.
            self.tracer.emit(now, || EventKind::CacheAccess {
                sm: sm as u32,
                level: CacheLevel::L1,
                line: line_addr,
                outcome: AccessOutcome::MshrMerge,
            });
            return t.max(fill_done);
        }
        self.tracer.emit(now, || EventKind::CacheAccess {
            sm: sm as u32,
            level: CacheLevel::L1,
            line: line_addr,
            outcome: if l1_hit {
                AccessOutcome::Hit
            } else {
                AccessOutcome::Miss
            },
        });
        if l1_hit {
            return t;
        }
        // True L1 miss: cross the interconnect to L2.
        t += self.config.l2_latency;
        self.l2_bytes += line_bytes;
        let l2_hit = self.l2.access_line(line_addr);
        let in_flight = self.l2_mshr.lookup(line, now);
        self.tracer.emit(now, || EventKind::CacheAccess {
            sm: sm as u32,
            level: CacheLevel::L2,
            line: line_addr,
            outcome: match (l2_hit, in_flight) {
                (_, Some(_)) => AccessOutcome::MshrMerge,
                (true, None) => AccessOutcome::Hit,
                (false, None) => AccessOutcome::Miss,
            },
        });
        match (l2_hit, in_flight) {
            (_, Some(dram_done)) => {
                // Fill still inbound from DRAM.
                t = t.max(dram_done + self.config.l2_latency);
            }
            (true, None) => {}
            (false, None) => {
                self.dram_bytes += line_bytes;
                let dram_done = self.dram.request(line_addr, self.config.line_bytes, now);
                self.l2_mshr.insert(line, dram_done, now);
                t = t.max(dram_done + self.config.l2_latency);
            }
        }
        self.l1_mshrs[sm].insert(line, t, now);
        t
    }

    /// Issues a prefetch for `[addr, addr+bytes)` from SM `sm`: the
    /// lines travel the same L1 → L2 → DRAM path (consuming the same
    /// bandwidth and MSHR entries) but nothing waits on them — later
    /// demand accesses find the lines resident, or in flight at the
    /// MSHRs.
    pub fn prefetch(&mut self, sm: usize, addr: u64, bytes: u32, now: u64) {
        self.prefetches += 1;
        let (first, count) = self.l1s[sm].lines_covering(addr, bytes);
        for i in 0..count {
            let _ = self.access_one_line(sm, first + i, now);
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1.accesses += s.accesses;
            l1.hits += s.hits;
        }
        let mut l1_mshr = MshrStats::default();
        for m in &self.l1_mshrs {
            let s = m.stats();
            l1_mshr.allocations += s.allocations;
            l1_mshr.merges += s.merges;
        }
        MemStats {
            l1,
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            l2_bytes: self.l2_bytes,
            dram_bytes: self.dram_bytes,
            prefetches: self.prefetches,
            l1_mshr,
            l2_mshr: self.l2_mshr.stats(),
        }
    }

    /// DRAM utilization over `total_cycles` (see [`Dram::utilization`]).
    pub fn dram_utilization(&self, total_cycles: u64) -> f64 {
        self.dram.utilization(total_cycles)
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MemoryConfig {
        MemoryConfig {
            sm_count: 2,
            line_bytes: 64,
            l1_bytes: 4 * 64,
            l1_assoc: 0,
            l1_latency: 10,
            l2_bytes: 16 * 64,
            l2_assoc: 4,
            l2_latency: 50,
            dram_latency: 200,
            dram_channels: 2,
            l1_mshr_entries: 8,
            l2_mshr_entries: 16,
            dram_bytes_per_cycle: 16.0,
            core_clock_mhz: 1000.0,
        }
    }

    #[test]
    fn cold_access_pays_full_path() {
        let mut m = MemoryHierarchy::new(&small_config());
        let done = m.access(0, 0, 64, 0);
        // DRAM completion (200 + 4) + L2 latency back = 254 > L1+L2 sum.
        assert_eq!(done, 254);
        let s = m.stats();
        assert_eq!(s.l1.misses(), 1);
        assert_eq!(s.l2.misses(), 1);
        assert_eq!(s.dram.requests, 1);
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = MemoryHierarchy::new(&small_config());
        let t1 = m.access(0, 0, 64, 0);
        let t2 = m.access(0, 0, 64, t1);
        assert_eq!(t2 - t1, 10);
        assert_eq!(m.stats().l1.hits, 1);
    }

    #[test]
    fn l2_serves_other_sms_l1_misses() {
        let mut m = MemoryHierarchy::new(&small_config());
        let _ = m.access(0, 0, 64, 0);
        // SM 1 misses its own L1 but hits the shared L2.
        let t = m.access(1, 0, 64, 1000);
        assert_eq!(t - 1000, 10 + 50);
        let s = m.stats();
        assert_eq!(s.l2.hits, 1);
        assert_eq!(s.dram.requests, 1, "no second DRAM trip");
    }

    #[test]
    fn concurrent_misses_to_one_line_merge_at_the_mshr() {
        let mut m = MemoryHierarchy::new(&small_config());
        // Two accesses to the same line from the same SM at nearly the
        // same time: the second must merge, not issue a second DRAM
        // request.
        let t1 = m.access(0, 0, 64, 0);
        // The line is now resident in L1 (fill-on-miss model), so use a
        // different SM to observe L2-level merging instead: SM 1 misses
        // L1 and L2... but L2 also filled. So test the L1 MSHR with a
        // *fresh* line accessed twice from different warps of one SM
        // before the fill lands — our fill-on-access model fills
        // immediately, so the second access hits L1: the architected
        // behaviour (one DRAM trip) is what we assert.
        let _ = t1;
        let before = m.stats().dram.requests;
        let _ = m.access(0, 4096, 64, 0);
        let _ = m.access(0, 4096, 64, 1);
        assert_eq!(m.stats().dram.requests, before + 1, "one fill per line");
    }

    #[test]
    fn l2_mshr_merges_cross_sm_misses() {
        // Craft a config where the L2 is tiny so both SMs miss it, and
        // verify the second SM's miss merges into the first's DRAM fill.
        let mut cfg = small_config();
        cfg.l2_bytes = 2 * 64;
        cfg.l2_assoc = 2;
        let mut m = MemoryHierarchy::new(&cfg);
        let before = m.stats();
        assert_eq!(before.l2_mshr.allocations, 0);
        let _ = m.access(0, 0, 64, 0);
        // SM 1 misses its own L1; hits L2 (filled by SM 0's access), so
        // to exercise the L2 MSHR we need the L2 probe itself to miss —
        // with a 2-line L2, push two other lines through first.
        let _ = m.access(0, 4096, 64, 1);
        let _ = m.access(0, 8192, 64, 2);
        // Now line 0 has been evicted from L2; SM 1 misses L1 and L2.
        let _ = m.access(1, 0, 64, 3);
        let s = m.stats();
        assert!(s.l2_mshr.allocations >= 3);
    }

    #[test]
    fn access_to_line_in_flight_waits_for_the_fill() {
        let mut m = MemoryHierarchy::new(&small_config());
        let fill_done = m.access(0, 0, 64, 0); // cold miss, lands at 254
                                               // A second demand access at cycle 5 cannot beat the fill.
        let t = m.access(0, 0, 64, 5);
        assert_eq!(t, fill_done, "data arrives with the in-flight fill");
        // After the fill lands, accesses are plain L1 hits.
        let t2 = m.access(0, 0, 64, fill_done + 1);
        assert_eq!(t2 - (fill_done + 1), 10);
    }

    #[test]
    fn prefetch_hides_latency_without_blocking() {
        let mut m = MemoryHierarchy::new(&small_config());
        m.prefetch(0, 0, 64, 0);
        assert_eq!(m.stats().prefetches, 1);
        assert_eq!(m.stats().dram.requests, 1, "prefetch fetches through DRAM");
        // A demand access long after the prefetch completed: L1 hit.
        let t = m.access(0, 0, 64, 10_000);
        assert_eq!(t - 10_000, 10);
        // A demand access right after the prefetch still waits for the
        // fill, but issues no duplicate DRAM request.
        let mut m2 = MemoryHierarchy::new(&small_config());
        m2.prefetch(0, 4096, 64, 0);
        let before = m2.stats().dram.requests;
        let t2 = m2.access(0, 4096, 64, 5);
        assert_eq!(m2.stats().dram.requests, before);
        assert!(t2 > 5 + 10, "fill still in flight");
    }

    #[test]
    fn multi_line_access_completes_with_slowest_line() {
        let mut m = MemoryHierarchy::new(&small_config());
        // Warm one of the two lines.
        let _ = m.access(0, 0, 64, 0);
        let start = 10_000;
        let t = m.access(0, 0, 128, start); // lines 0 (hit) and 1 (cold)
        assert!(t - start > 10, "completion is gated by the cold line");
        assert_eq!(m.stats().l1.accesses, 3);
    }

    #[test]
    fn bandwidth_counters_track_fills() {
        let mut m = MemoryHierarchy::new(&small_config());
        let _ = m.access(0, 0, 64, 0); // cold: 64B over both interfaces
        let _ = m.access(0, 0, 64, 500); // L1 hit: no fill traffic
        let s = m.stats();
        assert_eq!(s.l2_bytes, 64);
        assert_eq!(s.dram_bytes, 64);
        assert!((s.l2_bandwidth(64) - 1.0).abs() < 1e-12);
        assert_eq!(s.dram_bandwidth(0), 0.0);
    }

    #[test]
    fn capacity_miss_returns_to_l2() {
        let mut m = MemoryHierarchy::new(&small_config());
        // L1 holds 4 lines; stream 8 distinct lines then revisit the
        // first: it must have been evicted from L1 but still sit in L2.
        let mut now = 0;
        for l in 0..8u64 {
            now = m.access(0, l * 64, 64, now);
        }
        let before = m.stats();
        let t = m.access(0, 0, 64, now);
        let after = m.stats();
        assert_eq!(after.l1.hits, before.l1.hits, "L1 must miss");
        assert_eq!(after.l2.hits, before.l2.hits + 1, "L2 must hit");
        assert_eq!(t - now, 60);
    }
}
