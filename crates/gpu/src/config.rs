//! Memory-system configuration (Table 1 of the paper).

/// Parameters of the simulated memory hierarchy.
///
/// Defaults follow the paper's Table 1 (`SM75_RTX2060` Vulkan-sim
/// config); [`MemoryConfig::mobile_like`] follows the §7.4 mobile
/// configuration (8 SMs, 4 memory channels).
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Number of SMs, i.e. number of private L1 caches.
    pub sm_count: usize,
    /// Cache line size in bytes (all levels).
    pub line_bytes: u32,
    /// L1 data cache capacity per SM, bytes.
    pub l1_bytes: u64,
    /// L1 associativity; `0` means fully associative (Table 1).
    pub l1_assoc: u32,
    /// L1 hit latency, core cycles.
    pub l1_latency: u64,
    /// Shared L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 hit latency, core cycles (includes interconnect).
    pub l2_latency: u64,
    /// DRAM access latency (row activation + CAS), core cycles.
    pub dram_latency: u64,
    /// Number of independent DRAM channels.
    pub dram_channels: usize,
    /// Miss-status holding registers per L1 (in-flight line fills that
    /// later misses merge into).
    pub l1_mshr_entries: usize,
    /// Miss-status holding registers at the L2.
    pub l2_mshr_entries: usize,
    /// Peak transfer rate per channel, bytes per core cycle.
    pub dram_bytes_per_cycle: f64,
    /// Core clock in MHz (for converting cycles to seconds in the power
    /// model).
    pub core_clock_mhz: f64,
}

impl MemoryConfig {
    /// The desktop configuration of Table 1 (RTX 2060-like: 30 SMs,
    /// 64 KB fully-associative L1 at 20 cycles, 3 MB 16-way L2 at 160
    /// cycles, 1365 MHz core / 3500 MHz memory clocks).
    pub fn rtx2060_like(sm_count: usize) -> Self {
        MemoryConfig {
            sm_count,
            line_bytes: 128,
            l1_bytes: 64 * 1024,
            l1_assoc: 0, // fully associative per Table 1
            l1_latency: 20,
            l2_bytes: 3 * 1024 * 1024,
            l2_assoc: 16,
            l2_latency: 160,
            dram_latency: 220,
            dram_channels: 12,
            l1_mshr_entries: 32,
            l2_mshr_entries: 128,
            // GDDR6 on a 192-bit bus: ~336 GB/s peak at 1365 MHz core
            // -> ~246 B/core-cycle total -> ~20.5 B/cycle/channel.
            dram_bytes_per_cycle: 20.5,
            core_clock_mhz: 1365.0,
        }
    }

    /// The §7.4 mobile configuration: 8 SMs and only 4 memory channels
    /// of LPDDR-class bandwidth — memory bandwidth becomes the
    /// bottleneck (the paper sees DRAM utilization jump from 44% to 85%
    /// once CoopRT is enabled).
    pub fn mobile_like(sm_count: usize) -> Self {
        MemoryConfig {
            sm_count,
            dram_channels: 4,
            dram_bytes_per_cycle: 6.0,
            l2_bytes: 1024 * 1024,
            ..Self::rtx2060_like(sm_count)
        }
    }

    /// Total peak DRAM bandwidth, bytes per core cycle.
    pub fn dram_peak_bytes_per_cycle(&self) -> f64 {
        self.dram_bytes_per_cycle * self.dram_channels as f64
    }
}

impl Default for MemoryConfig {
    /// Defaults to the desktop (Table 1) configuration with 30 SMs.
    fn default() -> Self {
        Self::rtx2060_like(30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desktop_matches_table_1() {
        let c = MemoryConfig::rtx2060_like(30);
        assert_eq!(c.sm_count, 30);
        assert_eq!(c.l1_bytes, 64 * 1024);
        assert_eq!(c.l1_assoc, 0);
        assert_eq!(c.l1_latency, 20);
        assert_eq!(c.l2_bytes, 3 * 1024 * 1024);
        assert_eq!(c.l2_assoc, 16);
        assert_eq!(c.l2_latency, 160);
        assert_eq!(c.core_clock_mhz, 1365.0);
    }

    #[test]
    fn mobile_has_fewer_channels_and_smaller_l2() {
        let m = MemoryConfig::mobile_like(8);
        let d = MemoryConfig::rtx2060_like(8);
        assert!(m.dram_channels < d.dram_channels);
        assert!(m.l2_bytes < d.l2_bytes);
        assert!(m.dram_peak_bytes_per_cycle() < d.dram_peak_bytes_per_cycle());
    }

    #[test]
    fn default_is_30_sm_desktop() {
        assert_eq!(MemoryConfig::default(), MemoryConfig::rtx2060_like(30));
    }
}
