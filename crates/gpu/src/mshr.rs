//! Miss-status holding registers (MSHRs).
//!
//! When two requests miss on the same cache line while the first fill is
//! still in flight, real GPU caches merge the second into the pending
//! fill instead of issuing a duplicate memory request. Without this,
//! CoopRT's burst of parallel node fetches would overcount DRAM traffic
//! whenever different warps (or SMs, at the L2) chase the same subtree.
//!
//! The table is a fixed-capacity slot array (`lines`/`done` parallel
//! arrays plus a free list) — like the hardware it models, and unlike
//! the previous `HashMap`, it performs no per-access hashing or
//! allocation. Lookups are a linear scan over at most `capacity` slots
//! (32 at the L1, 128 at the L2 — a handful of cache lines of host
//! memory). Merge/allocate/eviction behaviour is bitwise identical to
//! the map-based model, including the deterministic line-index
//! tie-break for equal completion times.

/// Counters of MSHR behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Misses that allocated a new entry (went to the next level).
    pub allocations: u64,
    /// Misses merged into an in-flight fill.
    pub merges: u64,
}

const EMPTY: u64 = u64::MAX;

/// A table of in-flight line fills: line index → completion cycle.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::Mshr;
///
/// let mut mshr = Mshr::new(8);
/// assert_eq!(mshr.lookup(42, 100), None); // nothing in flight
/// mshr.insert(42, 500, 100);
/// // A second miss on line 42 at cycle 200 merges into the fill.
/// assert_eq!(mshr.lookup(42, 200), Some(500));
/// // After the fill lands, the entry is gone.
/// assert_eq!(mshr.lookup(42, 501), None);
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    /// Line index per slot; [`EMPTY`] marks a free slot.
    lines: Box<[u64]>,
    /// Completion cycle per slot (meaningful only for occupied slots).
    done: Box<[u64]>,
    /// Indices of free slots.
    free: Vec<u32>,
    stats: MshrStats,
}

impl Mshr {
    /// Creates an MSHR table with space for `capacity` in-flight lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR table needs at least one entry");
        Mshr {
            lines: vec![EMPTY; capacity].into_boxed_slice(),
            done: vec![0; capacity].into_boxed_slice(),
            free: (0..capacity as u32).rev().collect(),
            stats: MshrStats::default(),
        }
    }

    /// If a fill for `line` is in flight at time `now`, returns its
    /// completion cycle (a merge). Expired entries are evicted lazily.
    pub fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        debug_assert_ne!(line, EMPTY, "line index collides with the free marker");
        for i in 0..self.lines.len() {
            if self.lines[i] == line {
                if self.done[i] > now {
                    self.stats.merges += 1;
                    return Some(self.done[i]);
                }
                self.lines[i] = EMPTY;
                self.free.push(i as u32);
                return None;
            }
        }
        None
    }

    /// Records a new in-flight fill for `line` completing at `done`.
    ///
    /// If the table is full, completed entries are reclaimed first; if
    /// all entries are still pending, the *earliest-completing* one is
    /// dropped (it stops merging future requests — a conservative,
    /// deadlock-free approximation of MSHR back-pressure). Equal
    /// completion times are tie-broken on the line index, keeping
    /// whole-simulation results independent of which thread (or process)
    /// ran the simulation.
    pub fn insert(&mut self, line: u64, done: u64, now: u64) {
        self.stats.allocations += 1;
        if self.free.is_empty() {
            // Reclaim completed fills.
            for i in 0..self.lines.len() {
                if self.lines[i] != EMPTY && self.done[i] <= now {
                    self.lines[i] = EMPTY;
                    self.free.push(i as u32);
                }
            }
        }
        if self.free.is_empty() {
            // All pending: drop the earliest-completing entry, line
            // index breaking ties.
            let victim = (0..self.lines.len())
                .filter(|&i| self.lines[i] != EMPTY)
                .min_by_key(|&i| (self.done[i], self.lines[i]))
                .expect("full table has occupied slots");
            self.lines[victim] = EMPTY;
            self.free.push(victim as u32);
        }
        // Update in place if the line is already tracked (matches the
        // map-based model's insert-overwrite semantics).
        for i in 0..self.lines.len() {
            if self.lines[i] == line {
                self.done[i] = done;
                return;
            }
        }
        let slot = self.free.pop().expect("a free slot was ensured above") as usize;
        self.lines[slot] = line;
        self.done[slot] = done;
    }

    /// MSHR counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Number of fills currently tracked (including possibly expired
    /// entries awaiting lazy eviction).
    pub fn occupancy(&self) -> usize {
        self.lines.len() - self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_before_any_insert_misses() {
        let mut m = Mshr::new(4);
        assert_eq!(m.lookup(1, 0), None);
        assert_eq!(m.stats().merges, 0);
    }

    #[test]
    fn merge_returns_original_completion() {
        let mut m = Mshr::new(4);
        m.insert(7, 300, 100);
        assert_eq!(m.lookup(7, 150), Some(300));
        assert_eq!(m.lookup(7, 299), Some(300));
        assert_eq!(m.stats().merges, 2);
    }

    #[test]
    fn expired_entries_do_not_merge() {
        let mut m = Mshr::new(4);
        m.insert(7, 300, 100);
        assert_eq!(
            m.lookup(7, 300),
            None,
            "completion cycle itself is no longer in flight"
        );
        assert_eq!(m.occupancy(), 0, "expired entry reclaimed lazily");
    }

    #[test]
    fn capacity_reclaims_completed_first() {
        let mut m = Mshr::new(2);
        m.insert(1, 50, 0);
        m.insert(2, 500, 0);
        // At cycle 100, entry 1 has completed: inserting a third line
        // reclaims it and keeps entry 2.
        m.insert(3, 600, 100);
        assert_eq!(m.lookup(2, 200), Some(500));
        assert_eq!(m.lookup(3, 200), Some(600));
    }

    #[test]
    fn full_table_of_pending_fills_drops_earliest() {
        let mut m = Mshr::new(2);
        m.insert(1, 400, 0);
        m.insert(2, 900, 0);
        m.insert(3, 700, 10); // drops line 1 (earliest completion)
        assert_eq!(m.lookup(1, 20), None);
        assert_eq!(m.lookup(2, 20), Some(900));
        assert_eq!(m.lookup(3, 20), Some(700));
    }

    #[test]
    fn stats_count_allocations_and_merges() {
        let mut m = Mshr::new(8);
        m.insert(1, 100, 0);
        m.insert(2, 100, 0);
        let _ = m.lookup(1, 50);
        let _ = m.lookup(9, 50);
        let s = m.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.merges, 1);
    }

    #[test]
    fn eviction_tie_break_is_on_line_index() {
        // Three pending fills, all completing at the same cycle: the
        // victim must be the smallest line index, regardless of
        // insertion order or slot placement.
        let mut m = Mshr::new(3);
        m.insert(30, 500, 0);
        m.insert(10, 500, 0);
        m.insert(20, 500, 0);
        m.insert(40, 600, 1); // full of pending fills: drops line 10
        assert_eq!(m.lookup(10, 2), None, "smallest line index evicted");
        assert_eq!(m.lookup(30, 2), Some(500));
        assert_eq!(m.lookup(20, 2), Some(500));
        assert_eq!(m.lookup(40, 2), Some(600));
        // Completion time still dominates the tie-break: with lines 20
        // (done 500) and 5 (done 800) pending, the earlier-completing
        // line 20 goes first even though 5 < 20.
        let mut m = Mshr::new(2);
        m.insert(20, 500, 0);
        m.insert(5, 800, 0);
        m.insert(6, 900, 1);
        assert_eq!(m.lookup(20, 2), None, "earliest completion evicted");
        assert_eq!(m.lookup(5, 2), Some(800));
    }

    #[test]
    fn full_table_merge_vs_allocate() {
        // The merge path must keep working while the table is saturated:
        // a lookup on a tracked line merges (no allocation), a miss on
        // an untracked line allocates and forces the eviction path.
        let mut m = Mshr::new(2);
        m.insert(1, 400, 0);
        m.insert(2, 900, 0);
        assert_eq!(m.occupancy(), 2);
        // Merge against a full table: hits the in-flight fill.
        assert_eq!(m.lookup(1, 10), Some(400));
        assert_eq!(m.stats().merges, 1);
        assert_eq!(m.stats().allocations, 2);
        // Allocate against a full table of pending fills: line 1
        // (earliest completion) is dropped, and later misses on it
        // re-allocate instead of merging.
        m.insert(3, 700, 10);
        assert_eq!(m.stats().allocations, 3);
        assert_eq!(m.lookup(1, 20), None);
        assert_eq!(m.occupancy(), 2);
        // After the evicted line's would-have-been fill time, a fresh
        // insert for it is a plain allocation.
        m.insert(1, 1200, 950); // entry 2 (done 900) reclaimed first
        assert_eq!(m.lookup(1, 960), Some(1200));
        assert_eq!(m.lookup(2, 960), None, "completed entry was reclaimed");
        assert_eq!(m.lookup(3, 960), None, "completed entry expired lazily");
    }

    #[test]
    fn reinserting_a_tracked_line_updates_in_place() {
        // HashMap-insert parity: inserting a line that is already
        // tracked overwrites its completion cycle without consuming a
        // second slot.
        let mut m = Mshr::new(4);
        m.insert(7, 300, 0);
        m.insert(7, 450, 10);
        assert_eq!(m.occupancy(), 1);
        assert_eq!(m.lookup(7, 400), Some(450));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
