//! Miss-status holding registers (MSHRs).
//!
//! When two requests miss on the same cache line while the first fill is
//! still in flight, real GPU caches merge the second into the pending
//! fill instead of issuing a duplicate memory request. Without this,
//! CoopRT's burst of parallel node fetches would overcount DRAM traffic
//! whenever different warps (or SMs, at the L2) chase the same subtree.

use std::collections::HashMap;

/// Counters of MSHR behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MshrStats {
    /// Misses that allocated a new entry (went to the next level).
    pub allocations: u64,
    /// Misses merged into an in-flight fill.
    pub merges: u64,
}

/// A table of in-flight line fills: line index → completion cycle.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::Mshr;
///
/// let mut mshr = Mshr::new(8);
/// assert_eq!(mshr.lookup(42, 100), None); // nothing in flight
/// mshr.insert(42, 500, 100);
/// // A second miss on line 42 at cycle 200 merges into the fill.
/// assert_eq!(mshr.lookup(42, 200), Some(500));
/// // After the fill lands, the entry is gone.
/// assert_eq!(mshr.lookup(42, 501), None);
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    inflight: HashMap<u64, u64>,
    capacity: usize,
    stats: MshrStats,
}

impl Mshr {
    /// Creates an MSHR table with space for `capacity` in-flight lines.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR table needs at least one entry");
        Mshr {
            inflight: HashMap::new(),
            capacity,
            stats: MshrStats::default(),
        }
    }

    /// If a fill for `line` is in flight at time `now`, returns its
    /// completion cycle (a merge). Expired entries are evicted lazily.
    pub fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        match self.inflight.get(&line) {
            Some(&done) if done > now => {
                self.stats.merges += 1;
                Some(done)
            }
            Some(_) => {
                self.inflight.remove(&line);
                None
            }
            None => None,
        }
    }

    /// Records a new in-flight fill for `line` completing at `done`.
    ///
    /// If the table is full, completed entries are reclaimed first; if
    /// all entries are still pending, the *earliest-completing* one is
    /// dropped (it stops merging future requests — a conservative,
    /// deadlock-free approximation of MSHR back-pressure).
    pub fn insert(&mut self, line: u64, done: u64, now: u64) {
        self.stats.allocations += 1;
        if self.inflight.len() >= self.capacity {
            self.inflight.retain(|_, &mut d| d > now);
        }
        if self.inflight.len() >= self.capacity {
            // Tie-break equal completion times on the line index: the
            // hash map's iteration order is randomly seeded, and letting
            // it pick the victim makes whole-simulation results depend
            // on which thread (or process) ran the simulation.
            if let Some((&victim, _)) = self.inflight.iter().min_by_key(|(&line, &d)| (d, line)) {
                self.inflight.remove(&victim);
            }
        }
        self.inflight.insert(line, done);
    }

    /// MSHR counters.
    pub fn stats(&self) -> MshrStats {
        self.stats
    }

    /// Number of fills currently tracked (including possibly expired
    /// entries awaiting lazy eviction).
    pub fn occupancy(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_before_any_insert_misses() {
        let mut m = Mshr::new(4);
        assert_eq!(m.lookup(1, 0), None);
        assert_eq!(m.stats().merges, 0);
    }

    #[test]
    fn merge_returns_original_completion() {
        let mut m = Mshr::new(4);
        m.insert(7, 300, 100);
        assert_eq!(m.lookup(7, 150), Some(300));
        assert_eq!(m.lookup(7, 299), Some(300));
        assert_eq!(m.stats().merges, 2);
    }

    #[test]
    fn expired_entries_do_not_merge() {
        let mut m = Mshr::new(4);
        m.insert(7, 300, 100);
        assert_eq!(
            m.lookup(7, 300),
            None,
            "completion cycle itself is no longer in flight"
        );
        assert_eq!(m.occupancy(), 0, "expired entry reclaimed lazily");
    }

    #[test]
    fn capacity_reclaims_completed_first() {
        let mut m = Mshr::new(2);
        m.insert(1, 50, 0);
        m.insert(2, 500, 0);
        // At cycle 100, entry 1 has completed: inserting a third line
        // reclaims it and keeps entry 2.
        m.insert(3, 600, 100);
        assert_eq!(m.lookup(2, 200), Some(500));
        assert_eq!(m.lookup(3, 200), Some(600));
    }

    #[test]
    fn full_table_of_pending_fills_drops_earliest() {
        let mut m = Mshr::new(2);
        m.insert(1, 400, 0);
        m.insert(2, 900, 0);
        m.insert(3, 700, 10); // drops line 1 (earliest completion)
        assert_eq!(m.lookup(1, 20), None);
        assert_eq!(m.lookup(2, 20), Some(900));
        assert_eq!(m.lookup(3, 20), Some(700));
    }

    #[test]
    fn stats_count_allocations_and_merges() {
        let mut m = Mshr::new(8);
        m.insert(1, 100, 0);
        m.insert(2, 100, 0);
        let _ = m.lookup(1, 50);
        let _ = m.lookup(9, 50);
        let s = m.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.merges, 1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Mshr::new(0);
    }
}
