//! Multi-channel DRAM with per-channel queueing and finite bandwidth.

use cooprt_telemetry::{EventKind, Tracer};

/// Aggregate DRAM counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DramStats {
    /// Number of line requests served.
    pub requests: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Cycles during which at least the busiest channel was transferring
    /// data (sum over channels of their busy cycles).
    pub busy_cycles: u64,
}

/// A DRAM subsystem with `channels` independent channels.
///
/// Each line request is routed to a channel by address; the channel
/// serves requests one at a time at `bytes_per_cycle`, so a burst of
/// requests queues up and the completion time reflects both the access
/// latency and the bandwidth contention — the effect that caps the
/// mobile configuration of Fig. 18.
///
/// # Examples
///
/// ```
/// use cooprt_gpu::Dram;
///
/// let mut dram = Dram::new(1, 32.0, 100);
/// let t1 = dram.request(0, 128, 0);
/// // A second request to the same (only) channel queues behind the first.
/// let t2 = dram.request(4096, 128, 0);
/// assert!(t2 > t1);
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    /// Cycle until which each channel's data bus is busy.
    busy_until: Vec<u64>,
    bytes_per_cycle: f64,
    latency: u64,
    stats: DramStats,
    channel_busy: Vec<u64>,
    tracer: Tracer,
}

impl Dram {
    /// Creates a DRAM with `channels` channels, each transferring
    /// `bytes_per_cycle`, with a fixed access `latency` in core cycles.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `bytes_per_cycle <= 0`.
    pub fn new(channels: usize, bytes_per_cycle: f64, latency: u64) -> Self {
        assert!(channels > 0, "at least one DRAM channel required");
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        Dram {
            busy_until: vec![0; channels],
            bytes_per_cycle,
            latency,
            stats: DramStats::default(),
            channel_busy: vec![0; channels],
            tracer: Tracer::disabled(),
        }
    }

    /// Install a tracer; channel-busy intervals are emitted through it.
    /// Purely observational — no timing decision reads the tracer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Issues a line fill of `bytes` at address `addr` at time `now`;
    /// returns the completion cycle.
    pub fn request(&mut self, addr: u64, bytes: u32, now: u64) -> u64 {
        let ch = self.channel_of(addr);
        let service = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        let start = now.max(self.busy_until[ch]);
        let done = start + self.latency + service;
        // The data bus is occupied for the transfer; the fixed latency
        // (activation + CAS) pipelines with other requests.
        self.busy_until[ch] = start + service;
        self.stats.requests += 1;
        self.stats.bytes += bytes as u64;
        self.stats.busy_cycles += service;
        self.channel_busy[ch] += service;
        self.tracer.emit(now, || EventKind::DramBusy {
            channel: ch as u32,
            start,
            service,
            bytes,
        });
        done
    }

    /// Channel index a given address maps to (line interleaving).
    pub fn channel_of(&self, addr: u64) -> usize {
        // Interleave at 256B granularity across channels.
        ((addr >> 8) % self.busy_until.len() as u64) as usize
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.busy_until.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Fraction of total channel-cycles spent transferring over an
    /// elapsed window of `total_cycles` (the §7.4 "DRAM utilization").
    pub fn utilization(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.stats.busy_cycles as f64 / (total_cycles * self.channels() as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applies_to_isolated_request() {
        let mut d = Dram::new(2, 32.0, 100);
        let done = d.request(0, 128, 1000);
        assert_eq!(done, 1000 + 100 + 4);
    }

    #[test]
    fn same_channel_requests_queue() {
        let mut d = Dram::new(1, 32.0, 100);
        let t1 = d.request(0, 128, 0);
        let t2 = d.request(1 << 20, 128, 0);
        assert_eq!(t1, 104);
        // Second transfer starts when the bus frees at cycle 4.
        assert_eq!(t2, 4 + 104);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = Dram::new(2, 32.0, 100);
        let a = d.request(0, 128, 0); // channel 0
        let b = d.request(256, 128, 0); // channel 1
        assert_eq!(a, b, "parallel channels see no queueing");
    }

    #[test]
    fn channel_mapping_interleaves() {
        let d = Dram::new(4, 32.0, 100);
        assert_eq!(d.channel_of(0), 0);
        assert_eq!(d.channel_of(256), 1);
        assert_eq!(d.channel_of(512), 2);
        assert_eq!(d.channel_of(1024), 0);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = Dram::new(2, 64.0, 50);
        d.request(0, 128, 0);
        d.request(256, 256, 0);
        let s = d.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.bytes, 384);
        assert_eq!(s.busy_cycles, 2 + 4);
    }

    #[test]
    fn utilization_is_fraction_of_channel_cycles() {
        let mut d = Dram::new(2, 32.0, 0);
        d.request(0, 320, 0); // 10 busy cycles on channel 0
        assert!((d.utilization(10) - 0.5).abs() < 1e-12);
        assert_eq!(d.utilization(0), 0.0);
    }

    #[test]
    fn saturated_channel_pushes_completions_out() {
        let mut d = Dram::new(1, 8.0, 10);
        let mut last = 0;
        for i in 0..10 {
            last = d.request(i << 20, 128, 0);
        }
        // 10 requests x 16 service cycles each, fully serialized.
        assert_eq!(last, 9 * 16 + 10 + 16);
    }

    #[test]
    #[should_panic(expected = "at least one DRAM channel")]
    fn zero_channels_rejected() {
        let _ = Dram::new(0, 1.0, 1);
    }
}
