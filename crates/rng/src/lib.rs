//! Self-contained deterministic PRNG for the CoopRT workspace.
//!
//! The simulator runs in fully offline environments where crates.io is
//! unreachable, so it cannot depend on the external `rand` crate. This
//! crate provides the small slice of the `rand` API surface the
//! workspace actually uses — [`Rng`], [`RngExt`], [`SeedableRng`] and
//! [`rngs::StdRng`] — backed by xoshiro256++ seeded through SplitMix64.
//! Workspace crates alias it as `rand` via a Cargo package rename, so
//! call sites read identically to the real crate.
//!
//! Everything here is deterministic: the same seed always yields the
//! same sequence, on every platform, which the simulator's bit-exactness
//! guarantees depend on.

/// A source of pseudo-random 64-bit words.
///
/// Object-safe; generic helpers take `R: Rng + ?Sized` so they work
/// through `&mut` references.
pub trait Rng {
    /// Returns the next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32-bit word (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's native range.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value of the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    };
}
float_range!(f32);
float_range!(f64);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the spans used here
                // (scene sizes, light counts) — irrelevant next to the
                // determinism requirement.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    };
}
int_range!(usize);
int_range!(u64);
int_range!(u32);
int_range!(i32);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws a value from the type's native uniform distribution
    /// (`[0, 1)` for floats, the full range for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast (4 xor/shift/rotate ops per word), 256-bit state, passes
    /// BigCrush; more than adequate for procedural scene generation and
    /// path-tracing sample decorrelation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        /// Expands `seed` into the 256-bit state through SplitMix64, as
        /// recommended by the xoshiro authors (avoids the all-zero
        /// state and decorrelates nearby seeds).
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn nearby_seeds_are_decorrelated() {
        // SplitMix64 expansion must prevent low-entropy seeds (0, 1, 2…)
        // from producing correlated streams.
        let mut streams: Vec<u64> = (0..32)
            .map(|seed| StdRng::seed_from_u64(seed).next_u64())
            .collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 32);
    }

    #[test]
    fn f32_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f32>() as f64).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f = rng.random_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&f));
            let i = rng.random_range(10usize..17);
            assert!((10..17).contains(&i));
        }
    }

    #[test]
    fn integer_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5.0f32..5.0);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
