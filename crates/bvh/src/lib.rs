//! Binned-SAH 6-ary BVH builder for the CoopRT reproduction.
//!
//! The CoopRT paper models the BVH layout used by MESA and Vulkan-sim: a
//! 6-ary tree whose internal nodes store the AABBs *and addresses* of up to
//! six children, and whose leaf nodes are individual primitives (triangles)
//! storing vertex coordinates. The RT unit traverses this tree by popping
//! node **addresses** from a per-thread stack and fetching the node data
//! from the memory hierarchy.
//!
//! This crate provides that whole pipeline:
//!
//! - [`build_binary`] — a binned surface-area-heuristic (SAH) binary
//!   builder, standing in for Embree 3.14 (the paper's builder);
//! - [`WideBvh`] — collapse of the binary tree into 6-ary nodes;
//! - [`BvhImage`] — a flattened, byte-addressed serialization of the wide
//!   tree. Addresses from the image drive the simulator's caches and DRAM;
//! - [`traverse`] — reference CPU traversals (Algorithm 1 of the paper)
//!   used both as the functional gold model and by the simulator's math
//!   units;
//! - [`stats`] — tree statistics (size, depth, SAH cost) for Table 2.
//!
//! # Examples
//!
//! ```
//! use cooprt_bvh::{build_binary, BvhImage, WideBvh};
//! use cooprt_bvh::traverse::closest_hit;
//! use cooprt_math::{Ray, Triangle, Vec3};
//!
//! let tris = vec![
//!     Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y),
//!     Triangle::new(Vec3::splat(2.0), Vec3::splat(2.0) + Vec3::X, Vec3::splat(2.0) + Vec3::Y),
//! ];
//! let binary = build_binary(&tris);
//! let wide = WideBvh::from_binary(&binary);
//! let image = BvhImage::serialize(&wide, &tris);
//!
//! let ray = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
//! let hit = closest_hit(&image, &ray, f32::INFINITY).expect("hits first triangle");
//! assert_eq!(hit.triangle, 0);
//! ```

mod builder;
mod image;
pub mod stats;
pub mod traverse;
mod wide;

pub use builder::{build_binary, build_binary_median, BinaryBvh, BinaryNode};
pub use image::{BvhImage, ChildRef, Node, NodeKind, INTERNAL_NODE_BYTES, LEAF_NODE_BYTES};
pub use stats::TreeStats;
pub use wide::{WideBvh, WideNode, MAX_ARITY};
