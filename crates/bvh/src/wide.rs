//! Collapse of the binary BVH into the 6-ary layout of MESA / Vulkan-sim.

use crate::{BinaryBvh, BinaryNode};
use cooprt_math::Aabb;

/// Maximum number of children per wide node ("6-ary tree, following the
/// convention used in the MESA graphics library and Vulkan-sim" — paper
/// §4.1).
pub const MAX_ARITY: usize = 6;

/// A node of the 6-ary BVH.
#[derive(Clone, Debug, PartialEq)]
pub enum WideNode {
    /// Internal node with 2..=6 children (indices into
    /// [`WideBvh::nodes`]). The child bounds live in the *parent*, as in
    /// the hardware layout, so they are stored here alongside the index.
    Internal {
        /// Bounds of all geometry below this node.
        bounds: Aabb,
        /// Children: `(node index, child bounds)` pairs.
        children: Vec<(u32, Aabb)>,
    },
    /// Leaf node: a single triangle primitive.
    Leaf {
        /// Bounds of the triangle.
        bounds: Aabb,
        /// Triangle index into the scene's triangle array.
        triangle: u32,
    },
}

impl WideNode {
    /// Bounds of the node.
    pub fn bounds(&self) -> Aabb {
        match self {
            WideNode::Internal { bounds, .. } | WideNode::Leaf { bounds, .. } => *bounds,
        }
    }
}

/// A 6-ary BVH, produced by collapsing a [`BinaryBvh`].
#[derive(Clone, Debug)]
pub struct WideBvh {
    /// All nodes; leaves and internals interleaved.
    pub nodes: Vec<WideNode>,
    /// Index of the root node.
    pub root: u32,
    /// Number of triangles.
    pub triangle_count: usize,
}

impl WideBvh {
    /// Collapses a binary BVH into a 6-ary one.
    ///
    /// Each wide internal node absorbs binary descendants greedily: the
    /// candidate child with the largest surface area is repeatedly replaced
    /// by its two binary children until six slots are filled or only leaves
    /// remain. This is the standard wide-BVH collapse and mirrors what the
    /// MESA driver produces from Embree's binary output.
    ///
    /// # Examples
    ///
    /// ```
    /// use cooprt_bvh::{build_binary, WideBvh, MAX_ARITY};
    /// use cooprt_math::{Triangle, Vec3};
    ///
    /// let tris: Vec<Triangle> = (0..12)
    ///     .map(|i| {
    ///         let base = Vec3::new(i as f32, 0.0, 0.0);
    ///         Triangle::new(base, base + Vec3::X * 0.5, base + Vec3::Y * 0.5)
    ///     })
    ///     .collect();
    /// let wide = WideBvh::from_binary(&build_binary(&tris));
    /// assert!(wide.max_arity() <= MAX_ARITY);
    /// assert_eq!(wide.leaf_count(), 12);
    /// ```
    pub fn from_binary(binary: &BinaryBvh) -> Self {
        if binary.is_empty() {
            return WideBvh {
                nodes: Vec::new(),
                root: 0,
                triangle_count: 0,
            };
        }
        let mut nodes = Vec::with_capacity(binary.nodes.len());
        let root = collapse(binary, binary.root, &mut nodes);
        WideBvh {
            nodes,
            root,
            triangle_count: binary.triangle_count,
        }
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        self.depth_of(self.root)
    }

    fn depth_of(&self, node: u32) -> usize {
        match &self.nodes[node as usize] {
            WideNode::Leaf { .. } => 1,
            WideNode::Internal { children, .. } => {
                1 + children
                    .iter()
                    .map(|(c, _)| self.depth_of(*c))
                    .max()
                    .unwrap_or(0)
            }
        }
    }

    /// Number of leaf (primitive) nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, WideNode::Leaf { .. }))
            .count()
    }

    /// Number of internal nodes.
    pub fn internal_count(&self) -> usize {
        self.nodes.len() - self.leaf_count()
    }

    /// Largest child count over all internal nodes (0 for an empty tree).
    pub fn max_arity(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                WideNode::Internal { children, .. } => Some(children.len()),
                WideNode::Leaf { .. } => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Recursively emits the wide node for binary node `b` and returns its
/// index in `nodes`.
fn collapse(binary: &BinaryBvh, b: u32, nodes: &mut Vec<WideNode>) -> u32 {
    match &binary.nodes[b as usize] {
        BinaryNode::Leaf { bounds, triangle } => {
            nodes.push(WideNode::Leaf {
                bounds: *bounds,
                triangle: *triangle,
            });
            (nodes.len() - 1) as u32
        }
        BinaryNode::Internal {
            bounds,
            left,
            right,
        } => {
            // Gather up to MAX_ARITY binary subtree roots under this node.
            let mut slots: Vec<u32> = vec![*left, *right];
            loop {
                if slots.len() >= MAX_ARITY {
                    break;
                }
                // Expand the internal slot with the largest surface area.
                let candidate = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, &s)| {
                        matches!(binary.nodes[s as usize], BinaryNode::Internal { .. })
                    })
                    .max_by(|(_, &a), (_, &b)| {
                        let sa = binary.nodes[a as usize].bounds().surface_area();
                        let sb = binary.nodes[b as usize].bounds().surface_area();
                        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i);
                let Some(i) = candidate else { break };
                let expanded = slots.swap_remove(i);
                if let BinaryNode::Internal { left, right, .. } = &binary.nodes[expanded as usize] {
                    slots.push(*left);
                    slots.push(*right);
                }
            }

            let children: Vec<(u32, Aabb)> = slots
                .into_iter()
                .map(|s| {
                    let cb = binary.nodes[s as usize].bounds();
                    (collapse(binary, s, nodes), cb)
                })
                .collect();
            nodes.push(WideNode::Internal {
                bounds: *bounds,
                children,
            });
            (nodes.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_binary;
    use cooprt_math::{Triangle, Vec3};

    fn line_triangles(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let base = Vec3::new(i as f32 * 2.0, 0.0, 0.0);
                Triangle::new(base, base + Vec3::X, base + Vec3::Y)
            })
            .collect()
    }

    fn wide(n: usize) -> WideBvh {
        WideBvh::from_binary(&build_binary(&line_triangles(n)))
    }

    #[test]
    fn empty_tree() {
        let w = WideBvh::from_binary(&build_binary(&[]));
        assert_eq!(w.depth(), 0);
        assert_eq!(w.leaf_count(), 0);
        assert_eq!(w.max_arity(), 0);
    }

    #[test]
    fn single_triangle_collapses_to_leaf_root() {
        let w = wide(1);
        assert_eq!(w.nodes.len(), 1);
        assert!(matches!(w.nodes[w.root as usize], WideNode::Leaf { .. }));
    }

    #[test]
    fn arity_never_exceeds_six() {
        for n in [2usize, 5, 6, 7, 13, 36, 100] {
            let w = wide(n);
            assert!(
                w.max_arity() <= MAX_ARITY,
                "n = {n}, arity = {}",
                w.max_arity()
            );
        }
    }

    #[test]
    fn leaf_count_matches_triangle_count() {
        for n in [1usize, 6, 7, 50] {
            assert_eq!(wide(n).leaf_count(), n);
        }
    }

    #[test]
    fn six_triangles_collapse_to_single_internal() {
        let w = wide(6);
        assert_eq!(w.internal_count(), 1);
        assert_eq!(w.depth(), 2);
        if let WideNode::Internal { children, .. } = &w.nodes[w.root as usize] {
            assert_eq!(children.len(), 6);
        } else {
            panic!("root should be internal");
        }
    }

    #[test]
    fn wide_tree_is_shallower_than_binary() {
        let tris = line_triangles(64);
        let binary = build_binary(&tris);
        let w = WideBvh::from_binary(&binary);
        assert!(
            w.depth() < binary.depth(),
            "wide {} vs binary {}",
            w.depth(),
            binary.depth()
        );
    }

    #[test]
    fn child_bounds_stored_in_parent_match_child_nodes() {
        let w = wide(30);
        for node in &w.nodes {
            if let WideNode::Internal { children, .. } = node {
                for (idx, cb) in children {
                    assert_eq!(w.nodes[*idx as usize].bounds(), *cb);
                }
            }
        }
    }

    #[test]
    fn parent_bounds_contain_child_bounds() {
        let w = wide(30);
        for node in &w.nodes {
            if let WideNode::Internal { bounds, children } = node {
                for (_, cb) in children {
                    assert_eq!(bounds.union(cb), *bounds);
                }
            }
        }
    }

    #[test]
    fn every_triangle_in_exactly_one_wide_leaf() {
        let n = 41;
        let w = wide(n);
        let mut seen = vec![0; n];
        for node in &w.nodes {
            if let WideNode::Leaf { triangle, .. } = node {
                seen[*triangle as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}
