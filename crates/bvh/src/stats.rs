//! Tree statistics for Table 2 of the paper.

use crate::{BvhImage, NodeKind, WideBvh, WideNode};

/// Aggregate statistics of a built BVH.
///
/// Mirrors the per-scene numbers in Table 2 of the paper (tree size and
/// depth) plus a few quality measures used in tests.
///
/// # Examples
///
/// ```
/// use cooprt_bvh::{build_binary, BvhImage, TreeStats, WideBvh};
/// use cooprt_math::{Triangle, Vec3};
///
/// let tris: Vec<Triangle> = (0..32)
///     .map(|i| {
///         let b = Vec3::new(i as f32, 0.0, 0.0);
///         Triangle::new(b, b + Vec3::X * 0.5, b + Vec3::Y * 0.5)
///     })
///     .collect();
/// let wide = WideBvh::from_binary(&build_binary(&tris));
/// let image = BvhImage::serialize(&wide, &tris);
/// let stats = TreeStats::gather(&wide, &image);
/// assert_eq!(stats.leaf_nodes, 32);
/// assert!(stats.depth >= 2);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Number of internal nodes.
    pub internal_nodes: usize,
    /// Number of leaf (primitive) nodes.
    pub leaf_nodes: usize,
    /// Tree depth (root = level 1).
    pub depth: usize,
    /// Serialized footprint in bytes.
    pub total_bytes: u64,
    /// Serialized footprint in MiB.
    pub size_mib: f64,
    /// Average children per internal node.
    pub avg_arity: f64,
    /// SAH cost: sum over internal nodes of `SA(node)/SA(root)`, a
    /// standard proxy for expected traversal work.
    pub sah_cost: f64,
}

impl TreeStats {
    /// Gathers statistics from a wide tree and its serialized image.
    pub fn gather(wide: &WideBvh, image: &BvhImage) -> Self {
        let leaf_nodes = wide.leaf_count();
        let internal_nodes = wide.internal_count();
        let depth = wide.depth();
        let root_sa = if wide.nodes.is_empty() {
            0.0
        } else {
            wide.nodes[wide.root as usize].bounds().surface_area() as f64
        };
        let mut child_total = 0usize;
        let mut sah_cost = 0.0f64;
        for node in &wide.nodes {
            if let WideNode::Internal { bounds, children } = node {
                child_total += children.len();
                if root_sa > 0.0 {
                    sah_cost += bounds.surface_area() as f64 / root_sa;
                }
            }
        }
        let avg_arity = if internal_nodes == 0 {
            0.0
        } else {
            child_total as f64 / internal_nodes as f64
        };
        // Consistency between the two representations.
        debug_assert_eq!(
            image
                .iter()
                .filter(|n| matches!(n.kind, NodeKind::Leaf { .. }))
                .count(),
            leaf_nodes
        );
        TreeStats {
            internal_nodes,
            leaf_nodes,
            depth,
            total_bytes: image.total_bytes(),
            size_mib: image.size_mib(),
            avg_arity,
            sah_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_binary;
    use cooprt_math::{Triangle, Vec3};

    fn stats_of(n: usize) -> TreeStats {
        let tris: Vec<Triangle> = (0..n)
            .map(|i| {
                let b = Vec3::new((i % 10) as f32 * 2.0, 0.0, (i / 10) as f32 * 2.0);
                Triangle::new(b, b + Vec3::X, b + Vec3::Z)
            })
            .collect();
        let wide = WideBvh::from_binary(&build_binary(&tris));
        let image = BvhImage::serialize(&wide, &tris);
        TreeStats::gather(&wide, &image)
    }

    #[test]
    fn empty_tree_stats() {
        let s = stats_of(0);
        assert_eq!(s.leaf_nodes, 0);
        assert_eq!(s.internal_nodes, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.total_bytes, 0);
    }

    #[test]
    fn leaf_count_matches_input() {
        for n in [1usize, 7, 30, 100] {
            assert_eq!(stats_of(n).leaf_nodes, n);
        }
    }

    #[test]
    fn bigger_scenes_are_bigger_and_deeper() {
        let small = stats_of(10);
        let big = stats_of(200);
        assert!(big.total_bytes > small.total_bytes);
        assert!(big.depth >= small.depth);
        assert!(big.sah_cost > small.sah_cost);
    }

    #[test]
    fn avg_arity_in_range() {
        let s = stats_of(100);
        assert!(
            s.avg_arity >= 2.0 && s.avg_arity <= 6.0,
            "arity = {}",
            s.avg_arity
        );
    }

    #[test]
    fn size_mib_consistent_with_bytes() {
        let s = stats_of(50);
        assert!((s.size_mib - s.total_bytes as f64 / 1048576.0).abs() < 1e-12);
    }
}
