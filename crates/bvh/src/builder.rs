//! Binned-SAH binary BVH builder.
//!
//! Stands in for Embree 3.14, which the paper uses via the GPU driver.
//! The builder produces a binary tree with one triangle per leaf; the
//! [`crate::WideBvh`] collapse pass then merges it into the 6-ary layout
//! that MESA / Vulkan-sim use.

use cooprt_math::{Aabb, Triangle, Vec3};

/// Number of SAH bins per axis.
const BIN_COUNT: usize = 16;

/// A node of the intermediate binary BVH.
#[derive(Clone, Debug, PartialEq)]
pub enum BinaryNode {
    /// Interior node with exactly two children (indices into
    /// [`BinaryBvh::nodes`]).
    Internal {
        /// Bounds of all geometry below this node.
        bounds: Aabb,
        /// Left child index.
        left: u32,
        /// Right child index.
        right: u32,
    },
    /// Leaf node holding exactly one triangle (index into the scene's
    /// triangle array).
    Leaf {
        /// Bounds of the triangle.
        bounds: Aabb,
        /// Triangle index.
        triangle: u32,
    },
}

impl BinaryNode {
    /// Bounds of the node.
    pub fn bounds(&self) -> Aabb {
        match self {
            BinaryNode::Internal { bounds, .. } | BinaryNode::Leaf { bounds, .. } => *bounds,
        }
    }
}

/// A binary BVH over a triangle soup.
///
/// Produced by [`build_binary`]; consumed by
/// [`WideBvh::from_binary`](crate::WideBvh::from_binary).
#[derive(Clone, Debug)]
pub struct BinaryBvh {
    /// All nodes; index 0 is unused only when the tree is empty.
    pub nodes: Vec<BinaryNode>,
    /// Index of the root node in [`Self::nodes`].
    pub root: u32,
    /// Number of triangles the tree was built over.
    pub triangle_count: usize,
}

impl BinaryBvh {
    /// True if the tree contains no geometry.
    pub fn is_empty(&self) -> bool {
        self.triangle_count == 0
    }

    /// Depth of the tree (a single leaf has depth 1).
    pub fn depth(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        self.depth_of(self.root)
    }

    fn depth_of(&self, node: u32) -> usize {
        match &self.nodes[node as usize] {
            BinaryNode::Leaf { .. } => 1,
            BinaryNode::Internal { left, right, .. } => {
                1 + self.depth_of(*left).max(self.depth_of(*right))
            }
        }
    }
}

/// Builds a binary BVH with the binned surface-area heuristic.
///
/// Splits recurse until one triangle per leaf, matching the paper's model
/// in which every leaf node *is* a primitive. Degenerate centroid
/// distributions fall back to an equal-count median split, so the builder
/// never fails to make progress.
///
/// Returns an empty tree for an empty input slice.
///
/// # Examples
///
/// ```
/// use cooprt_bvh::build_binary;
/// use cooprt_math::{Triangle, Vec3};
///
/// let tris: Vec<Triangle> = (0..8)
///     .map(|i| {
///         let base = Vec3::new(i as f32 * 2.0, 0.0, 0.0);
///         Triangle::new(base, base + Vec3::X, base + Vec3::Y)
///     })
///     .collect();
/// let bvh = build_binary(&tris);
/// assert_eq!(bvh.triangle_count, 8);
/// // 8 leaves + 7 internal nodes.
/// assert_eq!(bvh.nodes.len(), 15);
/// ```
pub fn build_binary(triangles: &[Triangle]) -> BinaryBvh {
    if triangles.is_empty() {
        return BinaryBvh {
            nodes: Vec::new(),
            root: 0,
            triangle_count: 0,
        };
    }
    let mut prims: Vec<PrimInfo> = triangles
        .iter()
        .enumerate()
        .map(|(i, t)| PrimInfo {
            index: i as u32,
            bounds: t.bounds(),
            centroid: t.centroid(),
        })
        .collect();
    // Worst case: 2n - 1 nodes for n triangles.
    let mut nodes = Vec::with_capacity(2 * triangles.len());
    let root = build_recursive(&mut prims, &mut nodes);
    BinaryBvh {
        nodes,
        root,
        triangle_count: triangles.len(),
    }
}

/// Builds a binary BVH with object-median splits (no SAH).
///
/// Sorts primitives by centroid along the widest axis and splits at the
/// median. Produces balanced but lower-quality trees than
/// [`build_binary`]; the `ablation_bvh_quality` bench quantifies how
/// much tree quality matters to RT-unit performance.
///
/// # Examples
///
/// ```
/// use cooprt_bvh::{build_binary_median, build_binary};
/// use cooprt_math::{Triangle, Vec3};
///
/// let tris: Vec<Triangle> = (0..16)
///     .map(|i| {
///         let b = Vec3::new(i as f32, 0.0, 0.0);
///         Triangle::new(b, b + Vec3::X * 0.4, b + Vec3::Y * 0.4)
///     })
///     .collect();
/// let median = build_binary_median(&tris);
/// assert_eq!(median.triangle_count, 16);
/// assert_eq!(median.nodes.len(), build_binary(&tris).nodes.len());
/// ```
pub fn build_binary_median(triangles: &[Triangle]) -> BinaryBvh {
    if triangles.is_empty() {
        return BinaryBvh {
            nodes: Vec::new(),
            root: 0,
            triangle_count: 0,
        };
    }
    let mut prims: Vec<PrimInfo> = triangles
        .iter()
        .enumerate()
        .map(|(i, t)| PrimInfo {
            index: i as u32,
            bounds: t.bounds(),
            centroid: t.centroid(),
        })
        .collect();
    let mut nodes = Vec::with_capacity(2 * triangles.len());
    let root = build_median_recursive(&mut prims, &mut nodes);
    BinaryBvh {
        nodes,
        root,
        triangle_count: triangles.len(),
    }
}

fn build_median_recursive(prims: &mut [PrimInfo], nodes: &mut Vec<BinaryNode>) -> u32 {
    debug_assert!(!prims.is_empty());
    let bounds = geometry_bounds(prims);
    if prims.len() == 1 {
        nodes.push(BinaryNode::Leaf {
            bounds,
            triangle: prims[0].index,
        });
        return (nodes.len() - 1) as u32;
    }
    let axis = centroid_bounds(prims).extent().max_axis();
    prims.sort_by(|a, b| {
        a.centroid[axis]
            .partial_cmp(&b.centroid[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mid = prims.len() / 2;
    let (left_slice, right_slice) = prims.split_at_mut(mid);
    let left = build_median_recursive(left_slice, nodes);
    let right = build_median_recursive(right_slice, nodes);
    nodes.push(BinaryNode::Internal {
        bounds,
        left,
        right,
    });
    (nodes.len() - 1) as u32
}

#[derive(Clone, Copy, Debug)]
struct PrimInfo {
    index: u32,
    bounds: Aabb,
    centroid: Vec3,
}

fn geometry_bounds(prims: &[PrimInfo]) -> Aabb {
    prims
        .iter()
        .fold(Aabb::empty(), |acc, p| acc.union(&p.bounds))
}

fn centroid_bounds(prims: &[PrimInfo]) -> Aabb {
    prims
        .iter()
        .fold(Aabb::empty(), |acc, p| acc.union_point(p.centroid))
}

fn build_recursive(prims: &mut [PrimInfo], nodes: &mut Vec<BinaryNode>) -> u32 {
    debug_assert!(!prims.is_empty());
    let bounds = geometry_bounds(prims);
    if prims.len() == 1 {
        nodes.push(BinaryNode::Leaf {
            bounds,
            triangle: prims[0].index,
        });
        return (nodes.len() - 1) as u32;
    }

    let mid = choose_split(prims);
    let (left_slice, right_slice) = prims.split_at_mut(mid);
    let left = build_recursive(left_slice, nodes);
    let right = build_recursive(right_slice, nodes);
    nodes.push(BinaryNode::Internal {
        bounds,
        left,
        right,
    });
    (nodes.len() - 1) as u32
}

/// Partitions `prims` in place and returns the split point (always in
/// `1..prims.len()`).
fn choose_split(prims: &mut [PrimInfo]) -> usize {
    let cb = centroid_bounds(prims);
    let axis = cb.extent().max_axis();
    let extent = cb.extent()[axis];

    // All centroids coincide on the split axis: median split by index.
    if extent <= f32::EPSILON {
        return prims.len() / 2;
    }

    if let Some(mid) = binned_sah_split(prims, &cb, axis) {
        return mid;
    }

    // SAH produced a degenerate (empty-side) split; sort by centroid and
    // take the median.
    prims.sort_by(|a, b| {
        a.centroid[axis]
            .partial_cmp(&b.centroid[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    prims.len() / 2
}

/// Binned SAH: returns the partition point, or `None` when every candidate
/// plane leaves one side empty.
fn binned_sah_split(prims: &mut [PrimInfo], cb: &Aabb, axis: usize) -> Option<usize> {
    #[derive(Clone, Copy)]
    struct Bin {
        bounds: Aabb,
        count: usize,
    }
    let mut bins = [Bin {
        bounds: Aabb::empty(),
        count: 0,
    }; BIN_COUNT];

    let k0 = cb.min[axis];
    let k1 = BIN_COUNT as f32 / cb.extent()[axis];
    let bin_of = |c: Vec3| -> usize { (((c[axis] - k0) * k1) as usize).min(BIN_COUNT - 1) };

    for p in prims.iter() {
        let b = bin_of(p.centroid);
        bins[b].bounds = bins[b].bounds.union(&p.bounds);
        bins[b].count += 1;
    }

    // Sweep: cost(i) = SA(left 0..=i) * n_left + SA(right i+1..) * n_right.
    let mut right_sa = [0.0f32; BIN_COUNT];
    let mut right_count = [0usize; BIN_COUNT];
    let mut acc = Aabb::empty();
    let mut cnt = 0;
    for i in (1..BIN_COUNT).rev() {
        acc = acc.union(&bins[i].bounds);
        cnt += bins[i].count;
        right_sa[i] = acc.surface_area();
        right_count[i] = cnt;
    }

    let mut best_plane = None;
    let mut best_cost = f32::INFINITY;
    let mut left_acc = Aabb::empty();
    let mut left_cnt = 0;
    for i in 0..BIN_COUNT - 1 {
        left_acc = left_acc.union(&bins[i].bounds);
        left_cnt += bins[i].count;
        let right_cnt = right_count[i + 1];
        if left_cnt == 0 || right_cnt == 0 {
            continue;
        }
        let cost = left_acc.surface_area() * left_cnt as f32 + right_sa[i + 1] * right_cnt as f32;
        if cost < best_cost {
            best_cost = cost;
            best_plane = Some(i);
        }
    }

    let plane = best_plane?;
    // Partition prims around the chosen plane.
    let mut mid = 0;
    let len = prims.len();
    for i in 0..len {
        if bin_of(prims[i].centroid) <= plane {
            prims.swap(i, mid);
            mid += 1;
        }
    }
    debug_assert!(mid > 0 && mid < len);
    Some(mid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_triangles(n: usize) -> Vec<Triangle> {
        (0..n)
            .map(|i| {
                let x = (i % 8) as f32 * 2.0;
                let z = (i / 8) as f32 * 2.0;
                let base = Vec3::new(x, 0.0, z);
                Triangle::new(base, base + Vec3::X, base + Vec3::Z)
            })
            .collect()
    }

    #[test]
    fn empty_input_gives_empty_tree() {
        let bvh = build_binary(&[]);
        assert!(bvh.is_empty());
        assert_eq!(bvh.depth(), 0);
        assert!(bvh.nodes.is_empty());
    }

    #[test]
    fn single_triangle_is_one_leaf() {
        let tris = grid_triangles(1);
        let bvh = build_binary(&tris);
        assert_eq!(bvh.nodes.len(), 1);
        assert_eq!(bvh.depth(), 1);
        match &bvh.nodes[bvh.root as usize] {
            BinaryNode::Leaf { triangle, .. } => assert_eq!(*triangle, 0),
            other => panic!("expected leaf, got {other:?}"),
        }
    }

    #[test]
    fn node_count_is_2n_minus_1() {
        for n in [2usize, 3, 7, 16, 33, 100] {
            let tris = grid_triangles(n);
            let bvh = build_binary(&tris);
            assert_eq!(bvh.nodes.len(), 2 * n - 1, "n = {n}");
        }
    }

    #[test]
    fn every_triangle_appears_in_exactly_one_leaf() {
        let tris = grid_triangles(40);
        let bvh = build_binary(&tris);
        let mut seen = vec![0u32; tris.len()];
        for node in &bvh.nodes {
            if let BinaryNode::Leaf { triangle, .. } = node {
                seen[*triangle as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "leaf coverage: {seen:?}");
    }

    #[test]
    fn parent_bounds_contain_children() {
        let tris = grid_triangles(25);
        let bvh = build_binary(&tris);
        for node in &bvh.nodes {
            if let BinaryNode::Internal {
                bounds,
                left,
                right,
            } = node
            {
                let lb = bvh.nodes[*left as usize].bounds();
                let rb = bvh.nodes[*right as usize].bounds();
                assert_eq!(bounds.union(&lb), *bounds);
                assert_eq!(bounds.union(&rb), *bounds);
            }
        }
    }

    #[test]
    fn leaf_bounds_contain_triangle() {
        let tris = grid_triangles(12);
        let bvh = build_binary(&tris);
        for node in &bvh.nodes {
            if let BinaryNode::Leaf { bounds, triangle } = node {
                let t = tris[*triangle as usize];
                assert!(bounds.contains(t.v0));
                assert!(bounds.contains(t.v1));
                assert!(bounds.contains(t.v2));
            }
        }
    }

    #[test]
    fn median_builder_covers_all_triangles() {
        let tris = grid_triangles(33);
        let bvh = build_binary_median(&tris);
        assert_eq!(bvh.nodes.len(), 2 * 33 - 1);
        let mut seen = vec![0u32; tris.len()];
        for node in &bvh.nodes {
            if let BinaryNode::Leaf { triangle, .. } = node {
                seen[*triangle as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn median_builder_is_balanced() {
        let tris = grid_triangles(64);
        let bvh = build_binary_median(&tris);
        // A median tree over 64 leaves is perfectly balanced: depth 7.
        assert_eq!(bvh.depth(), 7);
    }

    #[test]
    fn median_bounds_contain_children() {
        let tris = grid_triangles(20);
        let bvh = build_binary_median(&tris);
        for node in &bvh.nodes {
            if let BinaryNode::Internal {
                bounds,
                left,
                right,
            } = node
            {
                assert_eq!(bounds.union(&bvh.nodes[*left as usize].bounds()), *bounds);
                assert_eq!(bounds.union(&bvh.nodes[*right as usize].bounds()), *bounds);
            }
        }
    }

    #[test]
    fn sah_tree_has_no_worse_sah_cost_than_median() {
        // Clustered geometry: SAH should separate the clusters where a
        // blind median may not, yielding lower total surface area.
        let mut tris = grid_triangles(24);
        for t in grid_triangles(24) {
            let shift = Vec3::new(500.0, 0.0, 0.0);
            tris.push(Triangle::new(t.v0 + shift, t.v1 + shift, t.v2 + shift));
        }
        let sa = |bvh: &BinaryBvh| -> f32 {
            bvh.nodes
                .iter()
                .filter_map(|n| match n {
                    BinaryNode::Internal { bounds, .. } => Some(bounds.surface_area()),
                    BinaryNode::Leaf { .. } => None,
                })
                .sum()
        };
        assert!(sa(&build_binary(&tris)) <= sa(&build_binary_median(&tris)) * 1.05);
    }

    #[test]
    fn coincident_centroids_still_terminate() {
        // 10 identical triangles: all centroids equal — must not recurse
        // forever.
        let t = Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y);
        let tris = vec![t; 10];
        let bvh = build_binary(&tris);
        assert_eq!(bvh.triangle_count, 10);
        assert_eq!(bvh.nodes.len(), 19);
    }

    #[test]
    fn sah_tree_is_shallower_than_linear() {
        let tris = grid_triangles(64);
        let bvh = build_binary(&tris);
        // A balanced-ish SAH tree over 64 leaves should be far below the
        // degenerate depth of 64 — allow generous slack.
        assert!(bvh.depth() <= 16, "depth = {}", bvh.depth());
        assert!(bvh.depth() >= 7); // log2(64) + 1
    }

    #[test]
    fn clustered_geometry_splits_clusters_first() {
        // Two clusters far apart; the root split should separate them.
        let mut tris = Vec::new();
        for i in 0..8 {
            let base = Vec3::new(i as f32 * 0.1, 0.0, 0.0);
            tris.push(Triangle::new(
                base,
                base + Vec3::X * 0.05,
                base + Vec3::Y * 0.05,
            ));
        }
        for i in 0..8 {
            let base = Vec3::new(1000.0 + i as f32 * 0.1, 0.0, 0.0);
            tris.push(Triangle::new(
                base,
                base + Vec3::X * 0.05,
                base + Vec3::Y * 0.05,
            ));
        }
        let bvh = build_binary(&tris);
        if let BinaryNode::Internal { left, right, .. } = &bvh.nodes[bvh.root as usize] {
            let lb = bvh.nodes[*left as usize].bounds();
            let rb = bvh.nodes[*right as usize].bounds();
            assert!(!lb.overlaps(&rb), "root split should separate the clusters");
        } else {
            panic!("root must be internal");
        }
    }
}
