//! Flattened, byte-addressed BVH memory image.
//!
//! The RT unit traverses the BVH by popping node *addresses* from a
//! per-thread stack and fetching node data through the cache hierarchy.
//! [`BvhImage`] is that address space: every wide node is assigned a byte
//! address in a packed, depth-first layout; the simulator issues fetches
//! for those addresses and the caches see realistic locality.

use crate::{WideBvh, WideNode};
use cooprt_math::{Aabb, Triangle};

/// Size in bytes of an internal node record.
///
/// 8-byte header + 6 children x (24-byte AABB + 4-byte offset) = 176,
/// matching the MESA/Vulkan-sim 6-ary node footprint.
pub const INTERNAL_NODE_BYTES: u32 = 176;

/// Size in bytes of a leaf (triangle) node record.
///
/// 3 vertices x 12 bytes + primitive id + header, rounded to 64 bytes
/// (two 32-byte memory chunks).
pub const LEAF_NODE_BYTES: u32 = 64;

/// Base address of the BVH heap in the simulated address space.
const HEAP_BASE: u64 = 0x1000_0000;

/// Granularity of the address-to-node lookup table.
///
/// Every node starts on a multiple of `gcd(INTERNAL_NODE_BYTES,
/// LEAF_NODE_BYTES) = 16` bytes from the heap base (the layout is
/// packed), so one table slot per 16-byte grain covers every possible
/// node start exactly once.
const LOOKUP_GRAIN: u64 = 16;

/// Sentinel for lookup-table slots that do not start a node.
const NO_NODE: u32 = u32::MAX;

/// A reference to a child node as stored inside its parent: the child's
/// bounds (tested *before* fetching the child) and its address.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChildRef {
    /// Byte address of the child node in the image.
    pub addr: u64,
    /// Child bounds, stored in the parent as in the hardware layout.
    pub bounds: Aabb,
}

/// Payload of a serialized node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeKind {
    /// Internal node: up to six `(bounds, address)` child records.
    Internal {
        /// Child references in slot order.
        children: Vec<ChildRef>,
    },
    /// Leaf node: one triangle primitive.
    Leaf {
        /// Index into [`BvhImage::triangles`].
        triangle: u32,
    },
}

/// A serialized node: its address plus payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Node {
    /// Byte address of this node.
    pub addr: u64,
    /// Node payload.
    pub kind: NodeKind,
}

impl Node {
    /// Bytes fetched from memory when this node is read.
    pub fn size_bytes(&self) -> u32 {
        match self.kind {
            NodeKind::Internal { .. } => INTERNAL_NODE_BYTES,
            NodeKind::Leaf { .. } => LEAF_NODE_BYTES,
        }
    }
}

/// The flattened BVH: nodes in address order plus the triangle array.
///
/// # Examples
///
/// ```
/// use cooprt_bvh::{build_binary, BvhImage, WideBvh};
/// use cooprt_math::{Triangle, Vec3};
///
/// let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
/// let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
/// assert_eq!(image.node_count(), 1);
/// let root = image.node_at(image.root_addr()).unwrap();
/// assert_eq!(root.size_bytes(), cooprt_bvh::LEAF_NODE_BYTES);
/// ```
#[derive(Clone, Debug)]
pub struct BvhImage {
    /// Nodes sorted by ascending address (depth-first layout order).
    nodes: Vec<Node>,
    root_addr: u64,
    root_bounds: Aabb,
    /// The scene's triangles, referenced by leaf nodes.
    triangles: Vec<Triangle>,
    total_bytes: u64,
    /// Dense addr→node-index table: slot `(addr - root_addr) /
    /// LOOKUP_GRAIN` holds the index into `nodes`, or [`NO_NODE`].
    /// Makes [`BvhImage::node_at`] O(1) on the traversal hot path.
    lookup: Vec<u32>,
    /// Parent-pointer table, index-aligned with `nodes`: slot `i` holds
    /// the index of node `i`'s parent, or [`NO_NODE`] for the root.
    /// Derived state like `lookup` (rebuilt by both construction paths,
    /// excluded from [`BvhImage::content_hash`]); backs the ray-path
    /// predictor's go-up-level fallback via [`BvhImage::parent_addr`].
    parents: Vec<u32>,
}

impl BvhImage {
    /// Serializes a wide BVH into a packed address space.
    ///
    /// Nodes are laid out in depth-first preorder starting at the heap
    /// base, so siblings and near ancestors share cache lines — the
    /// locality the paper's cache statistics depend on.
    ///
    /// # Panics
    ///
    /// Panics if `wide` references triangles outside `triangles`.
    pub fn serialize(wide: &WideBvh, triangles: &[Triangle]) -> Self {
        if wide.nodes.is_empty() {
            return BvhImage {
                nodes: Vec::new(),
                root_addr: HEAP_BASE,
                root_bounds: Aabb::empty(),
                triangles: triangles.to_vec(),
                total_bytes: 0,
                lookup: Vec::new(),
                parents: Vec::new(),
            };
        }
        // First pass: assign addresses in preorder.
        let mut addr_of = vec![0u64; wide.nodes.len()];
        let mut cursor = HEAP_BASE;
        assign_addrs(wide, wide.root, &mut addr_of, &mut cursor);

        // Second pass: emit nodes in preorder (ascending address).
        let mut nodes = Vec::with_capacity(wide.nodes.len());
        emit(wide, wide.root, &addr_of, triangles, &mut nodes);
        debug_assert!(nodes.windows(2).all(|w| w[0].addr < w[1].addr));

        // Third pass: the dense addr→index table for O(1) node lookup.
        let total_bytes = cursor - HEAP_BASE;
        let mut lookup = vec![NO_NODE; (total_bytes / LOOKUP_GRAIN) as usize];
        for (i, node) in nodes.iter().enumerate() {
            lookup[((node.addr - HEAP_BASE) / LOOKUP_GRAIN) as usize] = i as u32;
        }

        let parents = build_parents(&nodes, &lookup);
        BvhImage {
            nodes,
            root_addr: addr_of[wide.root as usize],
            root_bounds: wide.nodes[wide.root as usize].bounds(),
            triangles: triangles.to_vec(),
            total_bytes,
            lookup,
            parents,
        }
    }

    /// Reconstructs an image from its externally-visible parts: the
    /// node list (in address order), the root bounds, and the triangle
    /// array. The inverse of walking [`BvhImage::iter`] — used by the
    /// trace codec to rebuild a self-contained replay scene.
    ///
    /// The derived state (`total_bytes`, the O(1) address lookup table)
    /// is recomputed, so a round trip through `from_parts` preserves
    /// [`BvhImage::content_hash`] exactly.
    ///
    /// Returns an error instead of panicking if the node list is not a
    /// packed layout starting at the heap base, a child address does
    /// not start a node, or a leaf references a triangle out of range —
    /// `from_parts` consumes decoded (possibly corrupt) data.
    pub fn from_parts(
        nodes: Vec<Node>,
        root_bounds: Aabb,
        triangles: Vec<Triangle>,
    ) -> Result<Self, String> {
        let mut cursor = HEAP_BASE;
        for node in &nodes {
            if node.addr != cursor {
                return Err(format!(
                    "node layout is not packed: expected address {cursor:#x}, found {:#x}",
                    node.addr
                ));
            }
            if let NodeKind::Leaf { triangle } = node.kind {
                if triangle as usize >= triangles.len() {
                    return Err(format!(
                        "leaf at {:#x} references triangle {triangle} of {}",
                        node.addr,
                        triangles.len()
                    ));
                }
            }
            cursor += node.size_bytes() as u64;
        }
        let total_bytes = cursor - HEAP_BASE;
        let mut lookup = vec![NO_NODE; (total_bytes / LOOKUP_GRAIN) as usize];
        for (i, node) in nodes.iter().enumerate() {
            lookup[((node.addr - HEAP_BASE) / LOOKUP_GRAIN) as usize] = i as u32;
        }
        for node in &nodes {
            if let NodeKind::Internal { children } = &node.kind {
                for c in children {
                    let offset = c.addr.wrapping_sub(HEAP_BASE);
                    let slot = (offset / LOOKUP_GRAIN) as usize;
                    if offset % LOOKUP_GRAIN != 0 || lookup.get(slot).is_none_or(|&i| i == NO_NODE)
                    {
                        return Err(format!(
                            "internal node at {:#x} has dangling child address {:#x}",
                            node.addr, c.addr
                        ));
                    }
                }
            }
        }
        let parents = build_parents(&nodes, &lookup);
        Ok(BvhImage {
            nodes,
            root_addr: HEAP_BASE,
            root_bounds,
            triangles,
            total_bytes,
            lookup,
            parents,
        })
    }

    /// Address of the root node.
    pub fn root_addr(&self) -> u64 {
        self.root_addr
    }

    /// Bounds of the whole scene (the root AABB tested on traversal
    /// entry, Algorithm 1 line 1).
    pub fn root_bounds(&self) -> Aabb {
        self.root_bounds
    }

    /// Looks up a node by its byte address.
    ///
    /// Returns `None` for addresses that do not start a node. O(1):
    /// one indexed load into the dense table built at [`serialize`]
    /// time — this sits on the traversal hot path, queried once per
    /// node visit by both the CPU reference and the simulated RT unit.
    ///
    /// [`serialize`]: BvhImage::serialize
    #[inline]
    pub fn node_at(&self, addr: u64) -> Option<&Node> {
        let offset = addr.checked_sub(HEAP_BASE)?;
        if offset % LOOKUP_GRAIN != 0 {
            return None;
        }
        match *self.lookup.get((offset / LOOKUP_GRAIN) as usize)? {
            NO_NODE => None,
            i => Some(&self.nodes[i as usize]),
        }
    }

    /// Address of the parent of the node at `addr`.
    ///
    /// Returns `None` for the root and for addresses that do not start
    /// a node. O(1) via the parent-pointer table — queried on the
    /// ray-path predictor's go-up-level fallback and when attributing
    /// hits to a predicted subtree.
    #[inline]
    pub fn parent_addr(&self, addr: u64) -> Option<u64> {
        let offset = addr.checked_sub(HEAP_BASE)?;
        if offset % LOOKUP_GRAIN != 0 {
            return None;
        }
        match *self.lookup.get((offset / LOOKUP_GRAIN) as usize)? {
            NO_NODE => None,
            i => match self.parents[i as usize] {
                NO_NODE => None,
                p => Some(self.nodes[p as usize].addr),
            },
        }
    }

    /// Depth of the node at `addr` below the root (root = 0), or `None`
    /// for addresses that do not start a node. Walks the parent table,
    /// so O(tree depth).
    pub fn depth_of(&self, addr: u64) -> Option<u32> {
        self.node_at(addr)?;
        let mut depth = 0;
        let mut cur = addr;
        while let Some(p) = self.parent_addr(cur) {
            depth += 1;
            cur = p;
        }
        Some(depth)
    }

    /// The triangle referenced by a leaf.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn triangle(&self, index: u32) -> &Triangle {
        &self.triangles[index as usize]
    }

    /// All triangles in the image.
    pub fn triangles(&self) -> &[Triangle] {
        &self.triangles
    }

    /// Number of serialized nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over the serialized nodes in address order.
    pub fn iter(&self) -> std::slice::Iter<'_, Node> {
        self.nodes.iter()
    }

    /// Total footprint of the node records in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total footprint in mebibytes (the paper's Table 2 unit).
    pub fn size_mib(&self) -> f64 {
        self.total_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Content hash of the serialized image: FNV-1a 64 over every node
    /// (address, kind, child bounds/addresses or triangle index) and
    /// every triangle's exact `f32` bit patterns.
    ///
    /// Two images hash equal iff they describe the same address space
    /// over the same geometry, so the hash is a content address for
    /// caches that amortize BVH builds across requests (`cooprt-serve`
    /// keys its scene cache on it) and a cheap bitwise-identity witness
    /// in responses and differential checks.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_u64(self.root_addr);
        hash_aabb(&mut h, &self.root_bounds);
        h.write_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            h.write_u64(node.addr);
            match &node.kind {
                NodeKind::Leaf { triangle } => {
                    h.write_u64(0);
                    h.write_u64(u64::from(*triangle));
                }
                NodeKind::Internal { children } => {
                    h.write_u64(1);
                    h.write_u64(children.len() as u64);
                    for c in children {
                        h.write_u64(c.addr);
                        hash_aabb(&mut h, &c.bounds);
                    }
                }
            }
        }
        h.write_u64(self.triangles.len() as u64);
        for t in &self.triangles {
            for v in [t.v0, t.v1, t.v2] {
                h.write_u32(v.x.to_bits());
                h.write_u32(v.y.to_bits());
                h.write_u32(v.z.to_bits());
            }
        }
        h.finish()
    }
}

/// Minimal FNV-1a 64-bit hasher (the workspace carries no external
/// hashing dependency; this is the standard offset-basis/prime pair).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Builds the parent-pointer table: every internal node claims its
/// children. `lookup` maps child addresses to node indices, so the
/// pass is O(nodes x arity).
fn build_parents(nodes: &[Node], lookup: &[u32]) -> Vec<u32> {
    let mut parents = vec![NO_NODE; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        if let NodeKind::Internal { children } = &node.kind {
            for c in children {
                let slot = ((c.addr - HEAP_BASE) / LOOKUP_GRAIN) as usize;
                let child_idx = lookup[slot] as usize;
                parents[child_idx] = i as u32;
            }
        }
    }
    parents
}

fn hash_aabb(h: &mut Fnv64, aabb: &Aabb) {
    h.write_u32(aabb.min.x.to_bits());
    h.write_u32(aabb.min.y.to_bits());
    h.write_u32(aabb.min.z.to_bits());
    h.write_u32(aabb.max.x.to_bits());
    h.write_u32(aabb.max.y.to_bits());
    h.write_u32(aabb.max.z.to_bits());
}

impl<'a> IntoIterator for &'a BvhImage {
    type Item = &'a Node;
    type IntoIter = std::slice::Iter<'a, Node>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

fn assign_addrs(wide: &WideBvh, node: u32, addr_of: &mut [u64], cursor: &mut u64) {
    addr_of[node as usize] = *cursor;
    match &wide.nodes[node as usize] {
        WideNode::Leaf { .. } => *cursor += LEAF_NODE_BYTES as u64,
        WideNode::Internal { children, .. } => {
            *cursor += INTERNAL_NODE_BYTES as u64;
            for (c, _) in children {
                assign_addrs(wide, *c, addr_of, cursor);
            }
        }
    }
}

fn emit(wide: &WideBvh, node: u32, addr_of: &[u64], triangles: &[Triangle], out: &mut Vec<Node>) {
    let addr = addr_of[node as usize];
    match &wide.nodes[node as usize] {
        WideNode::Leaf { triangle, .. } => {
            assert!(
                (*triangle as usize) < triangles.len(),
                "leaf references triangle {triangle} outside the scene"
            );
            out.push(Node {
                addr,
                kind: NodeKind::Leaf {
                    triangle: *triangle,
                },
            });
        }
        WideNode::Internal { children, .. } => {
            let refs = children
                .iter()
                .map(|(c, b)| ChildRef {
                    addr: addr_of[*c as usize],
                    bounds: *b,
                })
                .collect();
            out.push(Node {
                addr,
                kind: NodeKind::Internal { children: refs },
            });
            for (c, _) in children {
                emit(wide, *c, addr_of, triangles, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_binary;
    use cooprt_math::Vec3;

    fn image_of(n: usize) -> BvhImage {
        let tris: Vec<Triangle> = (0..n)
            .map(|i| {
                let base = Vec3::new(i as f32 * 2.0, 0.0, (i % 3) as f32);
                Triangle::new(base, base + Vec3::X, base + Vec3::Y)
            })
            .collect();
        BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris)
    }

    #[test]
    fn empty_image() {
        let img = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&[])), &[]);
        assert_eq!(img.node_count(), 0);
        assert_eq!(img.total_bytes(), 0);
        assert!(img.root_bounds().is_empty());
        assert!(img.node_at(img.root_addr()).is_none());
    }

    #[test]
    fn addresses_are_unique_and_packed() {
        let img = image_of(25);
        let mut expected = img.iter().next().unwrap().addr;
        for node in &img {
            assert_eq!(node.addr, expected, "layout must be packed");
            expected += node.size_bytes() as u64;
        }
        assert_eq!(img.total_bytes(), expected - img.root_addr());
    }

    #[test]
    fn node_lookup_roundtrips() {
        let img = image_of(17);
        for node in &img {
            let found = img.node_at(node.addr).unwrap();
            assert_eq!(found, node);
        }
        // An address in the middle of a node record is not a node start.
        assert!(img.node_at(img.root_addr() + 4).is_none());
    }

    #[test]
    fn non_node_addresses_return_none() {
        let img = image_of(17);
        // Below the heap, above the heap, and grain-aligned inside the
        // root internal node (176 bytes spans several 16-byte grains).
        assert!(img.node_at(0).is_none());
        assert!(img.node_at(img.root_addr() - 16).is_none());
        assert!(img.node_at(img.root_addr() + img.total_bytes()).is_none());
        assert!(img.node_at(img.root_addr() + 16).is_none());
        assert!(img.node_at(u64::MAX).is_none());
    }

    #[test]
    fn child_addresses_resolve_to_nodes() {
        let img = image_of(30);
        for node in &img {
            if let NodeKind::Internal { children } = &node.kind {
                for c in children {
                    let child = img.node_at(c.addr).expect("dangling child address");
                    // Parent-stored bounds must contain the child's own
                    // geometry (exactly equal for leaves).
                    if let NodeKind::Leaf { triangle } = child.kind {
                        let t = img.triangle(triangle);
                        assert!(c.bounds.contains(t.v0));
                    }
                }
            }
        }
    }

    #[test]
    fn total_bytes_counts_node_sizes() {
        let img = image_of(9);
        let sum: u64 = img.iter().map(|n| n.size_bytes() as u64).sum();
        assert_eq!(img.total_bytes(), sum);
        assert!(img.size_mib() > 0.0);
    }

    #[test]
    fn root_bounds_contain_everything() {
        let img = image_of(12);
        for t in img.triangles() {
            assert!(img.root_bounds().contains(t.v0));
            assert!(img.root_bounds().contains(t.v1));
            assert!(img.root_bounds().contains(t.v2));
        }
    }

    #[test]
    fn content_hash_is_deterministic_and_content_sensitive() {
        // Same geometry, two independent serializations: equal hashes.
        assert_eq!(image_of(13).content_hash(), image_of(13).content_hash());
        // Different triangle counts: different address spaces.
        assert_ne!(image_of(13).content_hash(), image_of(14).content_hash());
        // A one-ULP vertex perturbation must change the hash.
        let tris = vec![Triangle::new(Vec3::ZERO, Vec3::X, Vec3::Y)];
        let a = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        let moved = vec![Triangle::new(
            Vec3::new(f32::from_bits(1), 0.0, 0.0),
            Vec3::X,
            Vec3::Y,
        )];
        let b = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&moved)), &moved);
        assert_ne!(a.content_hash(), b.content_hash());
        // The empty image hashes stably too.
        let empty = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&[])), &[]);
        assert_eq!(empty.content_hash(), empty.clone().content_hash());
    }

    #[test]
    fn from_parts_roundtrips_content_hash() {
        for n in [0usize, 1, 7, 25] {
            let img = image_of(n);
            let rebuilt = BvhImage::from_parts(
                img.iter().cloned().collect(),
                img.root_bounds(),
                img.triangles().to_vec(),
            )
            .unwrap();
            assert_eq!(rebuilt.content_hash(), img.content_hash(), "n = {n}");
            assert_eq!(rebuilt.total_bytes(), img.total_bytes());
            assert_eq!(rebuilt.root_addr(), img.root_addr());
            for node in &img {
                assert_eq!(rebuilt.node_at(node.addr), Some(node));
            }
        }
    }

    #[test]
    fn from_parts_rejects_unpacked_layouts() {
        let img = image_of(9);
        let mut nodes: Vec<Node> = img.iter().cloned().collect();
        nodes[1].addr += 16;
        let err =
            BvhImage::from_parts(nodes, img.root_bounds(), img.triangles().to_vec()).unwrap_err();
        assert!(err.contains("not packed"), "{err}");
    }

    #[test]
    fn from_parts_rejects_out_of_range_triangles() {
        let img = image_of(9);
        let err = BvhImage::from_parts(
            img.iter().cloned().collect(),
            img.root_bounds(),
            img.triangles()[..4].to_vec(),
        )
        .unwrap_err();
        assert!(err.contains("triangle"), "{err}");
    }

    #[test]
    fn from_parts_rejects_dangling_children() {
        let img = image_of(9);
        let mut nodes: Vec<Node> = img.iter().cloned().collect();
        for node in &mut nodes {
            if let NodeKind::Internal { children } = &mut node.kind {
                children[0].addr = HEAP_BASE + img.total_bytes() + 160;
                break;
            }
        }
        let err =
            BvhImage::from_parts(nodes, img.root_bounds(), img.triangles().to_vec()).unwrap_err();
        assert!(err.contains("dangling"), "{err}");
    }

    #[test]
    fn parent_table_inverts_child_links() {
        let img = image_of(30);
        // The root has no parent.
        assert_eq!(img.parent_addr(img.root_addr()), None);
        // Every child's parent pointer leads back to the node that
        // stores the child reference.
        let mut children_seen = 0;
        for node in &img {
            if let NodeKind::Internal { children } = &node.kind {
                for c in children {
                    assert_eq!(img.parent_addr(c.addr), Some(node.addr));
                    children_seen += 1;
                }
            }
        }
        assert_eq!(
            children_seen,
            img.node_count() - 1,
            "every non-root node is someone's child exactly once"
        );
        // Non-node addresses have no parent.
        assert_eq!(img.parent_addr(0), None);
        assert_eq!(img.parent_addr(img.root_addr() + 4), None);
        assert_eq!(img.parent_addr(u64::MAX), None);
    }

    #[test]
    fn depth_walks_the_parent_chain_to_the_root() {
        let img = image_of(30);
        assert_eq!(img.depth_of(img.root_addr()), Some(0));
        assert_eq!(img.depth_of(img.root_addr() + 4), None);
        for node in &img {
            let d = img.depth_of(node.addr).unwrap();
            match img.parent_addr(node.addr) {
                None => assert_eq!(d, 0),
                Some(p) => assert_eq!(d, img.depth_of(p).unwrap() + 1),
            }
        }
    }

    #[test]
    fn from_parts_rebuilds_the_parent_table() {
        let img = image_of(25);
        let rebuilt = BvhImage::from_parts(
            img.iter().cloned().collect(),
            img.root_bounds(),
            img.triangles().to_vec(),
        )
        .unwrap();
        for node in &img {
            assert_eq!(rebuilt.parent_addr(node.addr), img.parent_addr(node.addr));
            assert_eq!(rebuilt.depth_of(node.addr), img.depth_of(node.addr));
        }
    }

    #[test]
    fn single_leaf_image() {
        let img = image_of(1);
        assert_eq!(img.node_count(), 1);
        assert_eq!(img.total_bytes(), LEAF_NODE_BYTES as u64);
        let root = img.node_at(img.root_addr()).unwrap();
        assert!(matches!(root.kind, NodeKind::Leaf { triangle: 0 }));
    }
}
