//! Reference CPU traversals over a [`BvhImage`].
//!
//! These implement Algorithm 1 of the paper exactly — stack-based DFS over
//! node addresses, testing child AABBs against the current `min_thit` —
//! and serve as the functional gold model for the simulator: the RT unit
//! must compute identical hits under both the baseline and the CoopRT
//! policy.

use crate::{BvhImage, NodeKind};
use cooprt_math::Ray;

/// A closest-hit query result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrimHit {
    /// Index of the hit triangle.
    pub triangle: u32,
    /// Hit distance along the ray.
    pub t: f32,
    /// Barycentric `u`.
    pub u: f32,
    /// Barycentric `v`.
    pub v: f32,
}

/// Traversal statistics gathered by the instrumented queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalCounters {
    /// Nodes popped from the stack and processed.
    pub nodes_visited: u64,
    /// Ray/box tests performed.
    pub box_tests: u64,
    /// Ray/triangle tests performed.
    pub triangle_tests: u64,
    /// High-water mark of the traversal stack.
    pub max_stack_depth: usize,
}

/// Reusable traversal scratch state.
///
/// Holds the node-address stack so repeated queries (millions per frame
/// in the shader reference pass) do not allocate a fresh `Vec` each
/// time. One `Traverser` per thread; queries leave the buffer empty but
/// keep its capacity.
#[derive(Debug, Default)]
pub struct Traverser {
    stack: Vec<u64>,
}

impl Traverser {
    /// Creates a traverser with a stack sized for typical scene depths.
    pub fn new() -> Self {
        Traverser {
            stack: Vec::with_capacity(64),
        }
    }

    /// See [`closest_hit`].
    pub fn closest_hit(&mut self, image: &BvhImage, ray: &Ray, t_max: f32) -> Option<PrimHit> {
        let mut counters = TraversalCounters::default();
        self.closest_hit_counted(image, ray, t_max, &mut counters)
    }

    /// See [`closest_hit_counted`].
    pub fn closest_hit_counted(
        &mut self,
        image: &BvhImage,
        ray: &Ray,
        t_max: f32,
        counters: &mut TraversalCounters,
    ) -> Option<PrimHit> {
        let stack = &mut self.stack;
        stack.clear();
        let mut min_thit = t_max;
        let mut best: Option<PrimHit> = None;

        counters.box_tests += 1;
        if image.node_count() > 0 && image.root_bounds().intersect(ray, min_thit).is_some() {
            stack.push(image.root_addr());
        }

        while let Some(addr) = stack.pop() {
            counters.nodes_visited += 1;
            let node = image
                .node_at(addr)
                .expect("stack holds valid node addresses");
            match &node.kind {
                NodeKind::Internal { children } => {
                    for child in children {
                        counters.box_tests += 1;
                        if child.bounds.intersect(ray, min_thit).is_some() {
                            stack.push(child.addr);
                        }
                    }
                    counters.max_stack_depth = counters.max_stack_depth.max(stack.len());
                }
                NodeKind::Leaf { triangle } => {
                    counters.triangle_tests += 1;
                    if let Some(h) = image.triangle(*triangle).intersect(ray, f32::INFINITY) {
                        if accepts(h.t, *triangle, min_thit, &best) {
                            min_thit = h.t;
                            best = Some(PrimHit {
                                triangle: *triangle,
                                t: h.t,
                                u: h.u,
                                v: h.v,
                            });
                        }
                    }
                }
            }
        }
        best
    }

    /// See [`any_hit`].
    pub fn any_hit(&mut self, image: &BvhImage, ray: &Ray, t_max: f32) -> bool {
        let stack = &mut self.stack;
        stack.clear();
        if image.node_count() > 0 && image.root_bounds().intersect(ray, t_max).is_some() {
            stack.push(image.root_addr());
        }
        while let Some(addr) = stack.pop() {
            let node = image
                .node_at(addr)
                .expect("stack holds valid node addresses");
            match &node.kind {
                NodeKind::Internal { children } => {
                    for child in children {
                        if child.bounds.intersect(ray, t_max).is_some() {
                            stack.push(child.addr);
                        }
                    }
                }
                NodeKind::Leaf { triangle } => {
                    if image.triangle(*triangle).intersect(ray, t_max).is_some() {
                        stack.clear();
                        return true;
                    }
                }
            }
        }
        false
    }
}

std::thread_local! {
    /// Per-thread scratch for the free-function entry points, so callers
    /// that cannot conveniently thread a [`Traverser`] through still get
    /// allocation-free queries.
    static SCRATCH: std::cell::RefCell<Traverser> = std::cell::RefCell::new(Traverser::new());
}

/// Finds the closest-hit primitive for `ray`, searching `[0, t_max)`.
///
/// Implements Algorithm 1: DFS with a node-address stack; children whose
/// slab-entry distance is not closer than the current `min_thit` are
/// eliminated. Uses a per-thread reusable stack — no allocation per
/// query.
///
/// # Examples
///
/// ```
/// use cooprt_bvh::{build_binary, BvhImage, WideBvh};
/// use cooprt_bvh::traverse::closest_hit;
/// use cooprt_math::{Ray, Triangle, Vec3};
///
/// // Two parallel triangles; the nearer one must win.
/// let tris = vec![
///     Triangle::new(Vec3::new(0.0, 0.0, 5.0), Vec3::new(1.0, 0.0, 5.0), Vec3::new(0.0, 1.0, 5.0)),
///     Triangle::new(Vec3::new(0.0, 0.0, 2.0), Vec3::new(1.0, 0.0, 2.0), Vec3::new(0.0, 1.0, 2.0)),
/// ];
/// let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
/// let hit = closest_hit(&image, &Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::Z), f32::INFINITY);
/// assert_eq!(hit.unwrap().triangle, 1);
/// ```
pub fn closest_hit(image: &BvhImage, ray: &Ray, t_max: f32) -> Option<PrimHit> {
    SCRATCH.with(|t| t.borrow_mut().closest_hit(image, ray, t_max))
}

/// [`closest_hit`] with traversal counters, used by tests and statistics.
pub fn closest_hit_counted(
    image: &BvhImage,
    ray: &Ray,
    t_max: f32,
    counters: &mut TraversalCounters,
) -> Option<PrimHit> {
    SCRATCH.with(|t| {
        t.borrow_mut()
            .closest_hit_counted(image, ray, t_max, counters)
    })
}

/// Any-hit query: returns `true` as soon as *any* primitive is hit within
/// `[0, t_max)`. Used for shadow and ambient-occlusion rays.
pub fn any_hit(image: &BvhImage, ray: &Ray, t_max: f32) -> bool {
    SCRATCH.with(|t| t.borrow_mut().any_hit(image, ray, t_max))
}

/// Tie-broken hit acceptance: a candidate wins if it is strictly
/// closer, or exactly as close as the current best **hit** but with a
/// lower primitive index.
///
/// Rays through a shared mesh edge intersect both adjacent triangles at
/// *exactly* the same `t`; without a deterministic tie-break the winner
/// would depend on traversal order — and CoopRT deliberately changes
/// traversal order, which would break its bit-exactness guarantee.
pub(crate) fn accepts(t: f32, triangle: u32, min_thit: f32, best: &Option<PrimHit>) -> bool {
    if t < min_thit {
        return true;
    }
    matches!(best, Some(b) if t == b.t && triangle < b.triangle)
}

/// Brute-force closest hit over every triangle — the gold reference the
/// BVH traversal is validated against in tests.
pub fn brute_force_closest_hit(image: &BvhImage, ray: &Ray, t_max: f32) -> Option<PrimHit> {
    let mut min_thit = t_max;
    let mut best = None;
    for (i, tri) in image.triangles().iter().enumerate() {
        if let Some(h) = tri.intersect(ray, f32::INFINITY) {
            if accepts(h.t, i as u32, min_thit, &best) {
                min_thit = h.t;
                best = Some(PrimHit {
                    triangle: i as u32,
                    t: h.t,
                    u: h.u,
                    v: h.v,
                });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_binary, WideBvh};
    use cooprt_math::{Aabb, Triangle, Vec3};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_image(n: usize, seed: u64) -> BvhImage {
        let mut rng = StdRng::seed_from_u64(seed);
        let tris: Vec<Triangle> = (0..n)
            .map(|_| {
                let base = Vec3::new(
                    rng.random_range(-10.0f32..10.0),
                    rng.random_range(-10.0f32..10.0),
                    rng.random_range(-10.0f32..10.0),
                );
                let e1 = Vec3::new(
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                );
                let e2 = Vec3::new(
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                    rng.random_range(-1.0f32..1.0),
                );
                Triangle::new(base, base + e1, base + e2)
            })
            .collect();
        BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris)
    }

    fn random_ray(rng: &mut StdRng) -> Ray {
        let orig = Vec3::new(
            rng.random_range(-15.0f32..15.0),
            rng.random_range(-15.0f32..15.0),
            rng.random_range(-15.0f32..15.0),
        );
        // Aim at a random point near the middle of the triangle soup so
        // the rays actually exercise hits, not just empty space.
        let target = Vec3::new(
            rng.random_range(-5.0f32..5.0),
            rng.random_range(-5.0f32..5.0),
            rng.random_range(-5.0f32..5.0),
        );
        let dir = target - orig;
        if dir.length_squared() < 1e-4 {
            return Ray::new(orig, Vec3::Z);
        }
        Ray::new(orig, dir)
    }

    #[test]
    fn bvh_matches_brute_force_on_random_soup() {
        let image = random_image(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut hits = 0;
        for _ in 0..500 {
            let ray = random_ray(&mut rng);
            let bvh = closest_hit(&image, &ray, f32::INFINITY);
            let brute = brute_force_closest_hit(&image, &ray, f32::INFINITY);
            match (bvh, brute) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    hits += 1;
                    assert_eq!(a.triangle, b.triangle, "different primitive");
                    assert!((a.t - b.t).abs() < 1e-4);
                }
                (a, b) => panic!("bvh = {a:?}, brute force = {b:?}"),
            }
        }
        assert!(hits > 50, "test should exercise plenty of hits, got {hits}");
    }

    #[test]
    fn any_hit_agrees_with_closest_hit_existence() {
        let image = random_image(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let ray = random_ray(&mut rng);
            assert_eq!(
                any_hit(&image, &ray, f32::INFINITY),
                closest_hit(&image, &ray, f32::INFINITY).is_some()
            );
        }
    }

    #[test]
    fn t_max_limits_hits() {
        let tris = vec![Triangle::new(
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::new(1.0, 0.0, 10.0),
            Vec3::new(0.0, 1.0, 10.0),
        )];
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        let ray = Ray::new(Vec3::new(0.2, 0.2, 0.0), Vec3::Z);
        assert!(closest_hit(&image, &ray, 5.0).is_none());
        assert!(!any_hit(&image, &ray, 5.0));
        assert!(closest_hit(&image, &ray, 20.0).is_some());
        assert!(any_hit(&image, &ray, 20.0));
    }

    #[test]
    fn in_plane_rays_agree_between_scalar_box_test_and_traversal() {
        // Shared regression for the closed-slab NaN convention: the scalar
        // path and the 6-wide traversal path both funnel through
        // `Aabb::intersect`, and for rays lying *exactly* in the plane of
        // a zero-thickness AABB face (0 * inf = NaN slab lanes) they must
        // agree — with each other and with brute force.
        let flat = vec![
            // Zero-thickness in Y: both triangles lie in the y = 1 plane.
            Triangle::new(
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(4.0, 1.0, 0.0),
                Vec3::new(0.0, 1.0, 4.0),
            ),
            Triangle::new(
                Vec3::new(4.0, 1.0, 4.0),
                Vec3::new(4.0, 1.0, 0.0),
                Vec3::new(0.0, 1.0, 4.0),
            ),
        ];
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&flat)), &flat);
        let rays = [
            // In-plane, crossing the geometry.
            Ray::new(Vec3::new(-1.0, 1.0, 2.0), Vec3::X),
            // In-plane, missing the geometry sideways.
            Ray::new(Vec3::new(-1.0, 1.0, 9.0), Vec3::X),
            // Parallel but strictly above the plane.
            Ray::new(Vec3::new(-1.0, 2.0, 2.0), Vec3::X),
            // Perpendicular, through the face (a real triangle hit).
            Ray::new(Vec3::new(1.0, -1.0, 1.0), Vec3::Y),
        ];
        for ray in &rays {
            // Scalar box test on the exact (unpadded) zero-thickness face.
            let face = Aabb::new(Vec3::new(0.0, 1.0, 0.0), Vec3::new(4.0, 1.0, 4.0));
            let scalar_box = face.intersect(ray, f32::INFINITY).is_some();
            // The root bounds the traversal path prunes against contain
            // that face (padded), so a scalar-box hit must never be
            // pruned away by the wide path.
            let root_box = image.root_bounds().intersect(ray, f32::INFINITY).is_some();
            assert!(
                !scalar_box || root_box,
                "wide-path root pruning dropped a ray the scalar box test accepts: {ray:?}"
            );
            // And the full traversal must agree with brute force exactly.
            let bvh = closest_hit(&image, ray, f32::INFINITY);
            let brute = brute_force_closest_hit(&image, ray, f32::INFINITY);
            assert_eq!(
                bvh.map(|h| h.triangle),
                brute.map(|h| h.triangle),
                "traversal and brute force diverged for {ray:?}"
            );
        }
    }

    #[test]
    fn empty_scene_never_hits() {
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&[])), &[]);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        assert!(closest_hit(&image, &ray, f32::INFINITY).is_none());
        assert!(!any_hit(&image, &ray, f32::INFINITY));
    }

    #[test]
    fn counters_reflect_work() {
        let image = random_image(64, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut counters = TraversalCounters::default();
        // A ray through the middle of the soup must visit several nodes.
        let mut visited_any = false;
        for _ in 0..20 {
            let ray = random_ray(&mut rng);
            let before = counters.nodes_visited;
            let _ = closest_hit_counted(&image, &ray, f32::INFINITY, &mut counters);
            if counters.nodes_visited > before {
                visited_any = true;
            }
        }
        assert!(visited_any);
        assert!(counters.box_tests >= counters.nodes_visited);
    }

    #[test]
    fn traverser_reuse_matches_free_functions() {
        let image = random_image(80, 21);
        let mut rng = StdRng::seed_from_u64(22);
        let mut tr = Traverser::new();
        for _ in 0..100 {
            let ray = random_ray(&mut rng);
            assert_eq!(
                tr.closest_hit(&image, &ray, f32::INFINITY),
                closest_hit(&image, &ray, f32::INFINITY)
            );
            assert_eq!(
                tr.any_hit(&image, &ray, f32::INFINITY),
                any_hit(&image, &ray, f32::INFINITY)
            );
        }
    }

    #[test]
    fn node_elimination_reduces_visits() {
        // A wall of near triangles in front of a wall of far triangles:
        // with min_thit pruning, the far subtree should be mostly skipped
        // for a frontal ray.
        let mut tris = Vec::new();
        for i in 0..16 {
            let x = (i % 4) as f32;
            let y = (i / 4) as f32;
            tris.push(Triangle::new(
                Vec3::new(x, y, 1.0),
                Vec3::new(x + 1.0, y, 1.0),
                Vec3::new(x, y + 1.0, 1.0),
            ));
            tris.push(Triangle::new(
                Vec3::new(x, y, 100.0),
                Vec3::new(x + 1.0, y, 100.0),
                Vec3::new(x, y + 1.0, 100.0),
            ));
        }
        let image = BvhImage::serialize(&WideBvh::from_binary(&build_binary(&tris)), &tris);
        let ray = Ray::new(Vec3::new(2.0, 2.0, 0.0), Vec3::Z);
        let mut counters = TraversalCounters::default();
        let hit = closest_hit_counted(&image, &ray, f32::INFINITY, &mut counters).unwrap();
        assert!((hit.t - 1.0).abs() < 1e-4);
        // Far wall pruned: visits well below the total node count.
        assert!(
            counters.nodes_visited < image.node_count() as u64,
            "visited {} of {}",
            counters.nodes_visited,
            image.node_count()
        );
    }
}
