//! Host-side profiling spans: scoped wall-clock timers.
//!
//! These measure the *host* (suite build, BVH build, frame run, bench
//! phases), not the simulated machine — the complement of the sim-time
//! [`crate::Tracer`]. Spans are folded into the same JSON reports via
//! `MetricsReport` in `cooprt-core`.

use std::time::Instant;

/// One named wall-clock measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name (e.g. `"suite_build"`, `"frame_run"`).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// An ordered collection of wall-clock spans.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::Profiler;
///
/// let mut prof = Profiler::new();
/// let answer = prof.time("compute", || 6 * 7);
/// assert_eq!(answer, 42);
/// assert!(prof.secs("compute").unwrap() >= 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    spans: Vec<Span>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, recording its wall-clock duration under `name`, and
    /// return its result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_secs_f64());
        out
    }

    /// Record an externally measured duration under `name`.
    pub fn record(&mut self, name: &str, secs: f64) {
        self.spans.push(Span {
            name: name.to_string(),
            secs,
        });
    }

    /// Total seconds recorded under `name` (summed over repeats), or
    /// `None` if the span was never recorded.
    pub fn secs(&self, name: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut seen = false;
        for s in &self.spans {
            if s.name == name {
                total += s.secs;
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of all recorded spans.
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.secs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_and_returns() {
        let mut p = Profiler::new();
        let v = p.time("a", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(v, 7);
        assert_eq!(p.spans().len(), 1);
        assert!(p.secs("a").unwrap() > 0.0);
        assert!(p.secs("missing").is_none());
    }

    #[test]
    fn repeated_names_sum() {
        let mut p = Profiler::new();
        p.record("x", 0.5);
        p.record("x", 0.25);
        p.record("y", 1.0);
        assert_eq!(p.secs("x"), Some(0.75));
        assert_eq!(p.total_secs(), 1.75);
        assert_eq!(p.spans().len(), 3);
    }
}
