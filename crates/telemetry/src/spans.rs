//! Host-side profiling spans: scoped wall-clock timers.
//!
//! These measure the *host* (suite build, BVH build, frame run, bench
//! phases), not the simulated machine — the complement of the sim-time
//! [`crate::Tracer`]. Spans are folded into the same JSON reports via
//! `MetricsReport` in `cooprt-core`.
//!
//! Two span flavors live here:
//!
//! - [`Profiler`] — a plain, single-owner collection of named
//!   durations in seconds, for batch tools and benches;
//! - [`SpanRecorder`] — a cheap, cloneable handle (Tracer pattern:
//!   `Option<Arc<..>>`, zero-cost when disabled) recording
//!   microsecond-offset [`HostSpan`]s against a fixed origin. The
//!   serve path hands one recorder per request through the dispatcher
//!   and executor, producing the queue-wait → scene → engine-run →
//!   serialize span tree exported by
//!   [`crate::host_spans_chrome_json`].

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named wall-clock measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct Span {
    /// Span name (e.g. `"suite_build"`, `"frame_run"`).
    pub name: String,
    /// Elapsed wall-clock seconds.
    pub secs: f64,
}

/// An ordered collection of wall-clock spans.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::Profiler;
///
/// let mut prof = Profiler::new();
/// let answer = prof.time("compute", || 6 * 7);
/// assert_eq!(answer, 42);
/// assert!(prof.secs("compute").unwrap() >= 0.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    spans: Vec<Span>,
}

impl Profiler {
    /// Create an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `f`, recording its wall-clock duration under `name`, and
    /// return its result.
    pub fn time<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed().as_secs_f64());
        out
    }

    /// Record an externally measured duration under `name`.
    pub fn record(&mut self, name: &str, secs: f64) {
        self.spans.push(Span {
            name: name.to_string(),
            secs,
        });
    }

    /// Total seconds recorded under `name` (summed over repeats), or
    /// `None` if the span was never recorded.
    pub fn secs(&self, name: &str) -> Option<f64> {
        let mut total = 0.0;
        let mut seen = false;
        for s in &self.spans {
            if s.name == name {
                total += s.secs;
                seen = true;
            }
        }
        seen.then_some(total)
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of all recorded spans.
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.secs).sum()
    }
}

/// One host-side span, offset-stamped in microseconds against its
/// recorder's origin (so a request's span tree starts near 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostSpan {
    /// Span name (e.g. `"queue_wait"`, `"engine_run"`).
    pub name: String,
    /// Start offset from the recorder's origin, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
}

/// Spans stored per recorder before further recording is dropped; a
/// request produces a handful, so this only guards against runaway
/// instrumentation.
pub const MAX_SPANS_PER_RECORDER: usize = 64;

#[derive(Debug)]
struct SpanShared {
    origin: Instant,
    spans: Mutex<Vec<HostSpan>>,
}

/// A cheap, cloneable handle recording wall-clock spans against one
/// origin instant.
///
/// Disabled (the default) every method is a no-op costing a single
/// branch, mirroring [`crate::Tracer`] — which is what lets the serve
/// path thread a recorder through the dispatcher and executor
/// unconditionally without perturbing response bytes.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::SpanRecorder;
///
/// let rec = SpanRecorder::enabled();
/// let v = rec.time("compute", || 6 * 7);
/// assert_eq!(v, 42);
/// let spans = rec.snapshot();
/// assert_eq!(spans.len(), 1);
/// assert_eq!(spans[0].name, "compute");
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    inner: Option<Arc<SpanShared>>,
}

impl SpanRecorder {
    /// The disabled recorder: every call is a branch-and-return.
    pub fn disabled() -> Self {
        SpanRecorder { inner: None }
    }

    /// An enabled recorder whose origin is "now".
    pub fn enabled() -> Self {
        SpanRecorder {
            inner: Some(Arc::new(SpanShared {
                origin: Instant::now(),
                spans: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether spans are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Runs `f`, recording its duration under `name`, and returns its
    /// result. When disabled, `f` still runs (it is the real work) but
    /// nothing is measured or stored.
    #[inline]
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let Some(shared) = &self.inner else {
            return f();
        };
        let start = Instant::now();
        let out = f();
        let end = Instant::now();
        push_span(shared, name, start, end);
        out
    }

    /// Records a span measured externally as two instants (e.g. the
    /// queue wait between submission and a worker's claim).
    pub fn record(&self, name: &str, start: Instant, end: Instant) {
        if let Some(shared) = &self.inner {
            push_span(shared, name, start, end);
        }
    }

    /// A copy of the spans recorded so far, in recording order.
    pub fn snapshot(&self) -> Vec<HostSpan> {
        self.inner.as_ref().map_or_else(Vec::new, |s| {
            s.spans.lock().unwrap_or_else(|e| e.into_inner()).clone()
        })
    }
}

fn push_span(shared: &SpanShared, name: &str, start: Instant, end: Instant) {
    let start_us = start.saturating_duration_since(shared.origin).as_micros() as u64;
    let end_us = end.saturating_duration_since(shared.origin).as_micros() as u64;
    let mut spans = shared.spans.lock().unwrap_or_else(|e| e.into_inner());
    if spans.len() < MAX_SPANS_PER_RECORDER {
        spans.push(HostSpan {
            name: name.to_string(),
            start_us,
            dur_us: end_us.saturating_sub(start_us),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_and_returns() {
        let mut p = Profiler::new();
        let v = p.time("a", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
            7
        });
        assert_eq!(v, 7);
        assert_eq!(p.spans().len(), 1);
        assert!(p.secs("a").unwrap() > 0.0);
        assert!(p.secs("missing").is_none());
    }

    #[test]
    fn repeated_names_sum() {
        let mut p = Profiler::new();
        p.record("x", 0.5);
        p.record("x", 0.25);
        p.record("y", 1.0);
        assert_eq!(p.secs("x"), Some(0.75));
        assert_eq!(p.total_secs(), 1.75);
        assert_eq!(p.spans().len(), 3);
    }

    #[test]
    fn disabled_recorder_still_runs_the_work() {
        let rec = SpanRecorder::disabled();
        assert_eq!(rec.time("x", || 5), 5);
        rec.record("y", Instant::now(), Instant::now());
        assert!(!rec.is_enabled());
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn recorder_clones_share_one_span_list() {
        let a = SpanRecorder::enabled();
        let b = a.clone();
        a.time("first", || {});
        let t = Instant::now();
        b.record("second", t, t);
        let spans = a.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "first");
        assert_eq!(spans[1].name, "second");
    }

    #[test]
    fn pre_origin_instants_clamp_to_zero() {
        let before = Instant::now();
        let rec = SpanRecorder::enabled();
        rec.record("early", before, before);
        let spans = rec.snapshot();
        assert_eq!(spans[0].start_us, 0);
        assert_eq!(spans[0].dur_us, 0);
    }

    #[test]
    fn recorder_caps_runaway_span_counts() {
        let rec = SpanRecorder::enabled();
        for _ in 0..(MAX_SPANS_PER_RECORDER + 5) {
            rec.time("s", || {});
        }
        assert_eq!(rec.snapshot().len(), MAX_SPANS_PER_RECORDER);
    }
}
