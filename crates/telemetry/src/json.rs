//! A hand-rolled JSON writer with correct escaping and nesting helpers.
//!
//! The workspace builds with zero external dependencies, so every JSON
//! document we emit — `BENCH_simperf.json`, `METRICS.json`, Chrome
//! trace files — goes through this writer instead of ad-hoc
//! `String::push_str` formatting scattered across benches.
//!
//! Two container styles are supported and can be mixed freely:
//!
//! - **pretty**: each element on its own line, two-space indentation
//!   per pretty nesting level (the style of the existing bench JSON);
//! - **inline**: the whole container on one line, elements separated by
//!   `", "` (used for array-of-record rows such as the `scenes` rows in
//!   `BENCH_simperf.json`, and for compact time-series arrays).
//!
//! Floats are written with an explicit fixed precision; non-finite
//! values (which JSON cannot represent) are written as `null`.

/// Append `s` to `out` with JSON string escaping.
///
/// Escapes `"` and `\`, the common control characters `\n`/`\r`/`\t`,
/// and any other control character as `\u00XX`. Everything else
/// (including non-ASCII) is passed through verbatim, which is valid
/// JSON as long as the document is UTF-8 — and Rust strings are.
pub fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Object,
    Array,
}

#[derive(Debug)]
struct Frame {
    kind: Kind,
    inline: bool,
    count: usize,
}

/// Incremental JSON document builder.
///
/// The writer tracks the container stack so callers only state intent
/// (`field_u64`, `begin_array`, …) and never hand-manage commas,
/// indentation or escaping. [`JsonWriter::finish`] asserts the document
/// is complete (all containers closed) and returns the string with a
/// trailing newline.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_u64("cycles", 9162);
/// w.field_str("scene", "wknd");
/// w.end_object();
/// assert_eq!(w.finish(), "{\n  \"cycles\": 9162,\n  \"scene\": \"wknd\"\n}\n");
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    frames: Vec<Frame>,
}

impl JsonWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn pretty_depth(&self) -> usize {
        self.frames.iter().filter(|f| !f.inline).count()
    }

    /// Write the separator/indentation due before the next element of
    /// the current container, and count it.
    fn sep(&mut self) {
        let depth = self.pretty_depth();
        let Some(top) = self.frames.last_mut() else {
            return; // root value: no separator
        };
        if top.inline {
            if top.count > 0 {
                self.out.push_str(", ");
            }
        } else {
            if top.count > 0 {
                self.out.push(',');
            }
            self.out.push('\n');
            for _ in 0..depth {
                self.out.push_str("  ");
            }
        }
        top.count += 1;
    }

    /// Write `"key": ` (with separator) inside the current object.
    fn key(&mut self, key: &str) {
        debug_assert_eq!(
            self.frames.last().map(|f| f.kind),
            Some(Kind::Object),
            "key() outside an object"
        );
        self.sep();
        self.out.push('"');
        json_escape(&mut self.out, key);
        self.out.push_str("\": ");
    }

    fn open(&mut self, kind: Kind, inline: bool) {
        self.out.push(match kind {
            Kind::Object => '{',
            Kind::Array => '[',
        });
        self.frames.push(Frame {
            kind,
            inline,
            count: 0,
        });
    }

    fn close(&mut self, kind: Kind) {
        let f = self.frames.pop().expect("close() with no open container");
        assert_eq!(f.kind, kind, "mismatched container close");
        if !f.inline && f.count > 0 {
            self.out.push('\n');
            let depth = self.pretty_depth();
            for _ in 0..depth {
                self.out.push_str("  ");
            }
        }
        self.out.push(match kind {
            Kind::Object => '}',
            Kind::Array => ']',
        });
    }

    /// Open a pretty object in value position (document root or array
    /// element).
    pub fn begin_object(&mut self) {
        self.sep();
        self.open(Kind::Object, false);
    }

    /// Open a single-line object in value position (typically one
    /// record row of a pretty array).
    pub fn begin_inline_object(&mut self) {
        self.sep();
        self.open(Kind::Object, true);
    }

    /// Open a pretty object as the value of `key`.
    pub fn begin_object_field(&mut self, key: &str) {
        self.key(key);
        self.open(Kind::Object, false);
    }

    /// Open a single-line object as the value of `key` (e.g. the
    /// `args` object of a Chrome trace event row).
    pub fn begin_inline_object_field(&mut self, key: &str) {
        self.key(key);
        self.open(Kind::Object, true);
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        self.close(Kind::Object);
    }

    /// Open a pretty array as the value of `key`.
    pub fn begin_array(&mut self, key: &str) {
        self.key(key);
        self.open(Kind::Array, false);
    }

    /// Open a single-line array as the value of `key` (compact scalar
    /// series).
    pub fn begin_inline_array(&mut self, key: &str) {
        self.key(key);
        self.open(Kind::Array, true);
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        self.close(Kind::Array);
    }

    fn push_f64(&mut self, v: f64, decimals: usize) {
        if v.is_finite() {
            self.out.push_str(&format!("{v:.decimals$}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Write `"key": <v>` for an unsigned integer.
    pub fn field_u64(&mut self, key: &str, v: u64) {
        self.key(key);
        self.out.push_str(&v.to_string());
    }

    /// Write `"key": <v>` for a signed integer.
    pub fn field_i64(&mut self, key: &str, v: i64) {
        self.key(key);
        self.out.push_str(&v.to_string());
    }

    /// Write `"key": <v>` with `decimals` digits after the point.
    /// Non-finite values are written as `null`.
    pub fn field_f64(&mut self, key: &str, v: f64, decimals: usize) {
        self.key(key);
        self.push_f64(v, decimals);
    }

    /// Write `"key": "<v>"` with escaping.
    pub fn field_str(&mut self, key: &str, v: &str) {
        self.key(key);
        self.out.push('"');
        json_escape(&mut self.out, v);
        self.out.push('"');
    }

    /// Write `"key": true|false`.
    pub fn field_bool(&mut self, key: &str, v: bool) {
        self.key(key);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Write `"key": <raw>` where `raw` is inserted **verbatim**.
    ///
    /// The caller guarantees `raw` is one complete, valid JSON value
    /// (object, array or scalar). Used to embed an already-serialized
    /// document — e.g. a cached `cooprt-serve` result payload — inside
    /// a wrapper object without re-parsing it, which keeps cached
    /// bytes bitwise identical to fresh ones.
    pub fn field_raw(&mut self, key: &str, raw: &str) {
        self.key(key);
        self.out.push_str(raw.trim_end_matches('\n'));
    }

    /// Write an unsigned-integer array element.
    pub fn item_u64(&mut self, v: u64) {
        self.sep();
        self.out.push_str(&v.to_string());
    }

    /// Write a float array element with `decimals` digits after the
    /// point (`null` if non-finite).
    pub fn item_f64(&mut self, v: f64, decimals: usize) {
        self.sep();
        self.push_f64(v, decimals);
    }

    /// Write a string array element with escaping.
    pub fn item_str(&mut self, v: &str) {
        self.sep();
        self.out.push('"');
        json_escape(&mut self.out, v);
        self.out.push('"');
    }

    /// Finish the document: assert every container was closed and
    /// return the text with a trailing newline.
    pub fn finish(mut self) -> String {
        assert!(
            self.frames.is_empty(),
            "finish() with {} unclosed container(s)",
            self.frames.len()
        );
        self.out.push('\n');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        let mut s = String::new();
        json_escape(&mut s, "a\"b\\c\nd\te\r\u{1}ü");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\r\\u0001ü");
    }

    #[test]
    fn empty_containers() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_array("xs");
        w.end_array();
        w.begin_object_field("o");
        w.end_object();
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"xs\": [],\n  \"o\": {}\n}\n");
    }

    #[test]
    fn inline_rows_match_the_bench_layout() {
        // This pins the exact byte layout simperf has always produced,
        // so porting it onto the writer is output-compatible.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("resolution", 96);
        w.field_f64("sequential_secs", 1.5, 6);
        w.begin_array("thread_ladder");
        for (t, s, x) in [(1u64, 1.5f64, 1.0f64), (2, 0.8, 1.875)] {
            w.begin_inline_object();
            w.field_u64("threads", t);
            w.field_f64("secs", s, 6);
            w.field_f64("speedup", x, 4);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let expect = "{\n  \"resolution\": 96,\n  \"sequential_secs\": 1.500000,\n  \
                      \"thread_ladder\": [\n    \
                      {\"threads\": 1, \"secs\": 1.500000, \"speedup\": 1.0000},\n    \
                      {\"threads\": 2, \"secs\": 0.800000, \"speedup\": 1.8750}\n  ]\n}\n";
        assert_eq!(w.finish(), expect);
    }

    #[test]
    fn nested_pretty_objects_indent_per_level() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_object_field("mem");
        w.begin_object_field("l1");
        w.field_u64("hits", 10);
        w.end_object();
        w.end_object();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"mem\": {\n    \"l1\": {\n      \"hits\": 10\n    }\n  }\n}\n"
        );
    }

    #[test]
    fn inline_arrays_and_scalar_items() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.begin_inline_array("cycles");
        w.item_u64(0);
        w.item_u64(500);
        w.end_array();
        w.begin_inline_array("rates");
        w.item_f64(0.25, 4);
        w.item_f64(f64::NAN, 4);
        w.end_array();
        w.begin_inline_array("names");
        w.item_str("a\"b");
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\n  \"cycles\": [0, 500],\n  \"rates\": [0.2500, null],\n  \
             \"names\": [\"a\\\"b\"]\n}\n"
        );
    }

    #[test]
    fn raw_fields_embed_verbatim() {
        let mut inner = JsonWriter::new();
        inner.begin_object();
        inner.field_u64("cycles", 7);
        inner.end_object();
        let inner = inner.finish();

        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("state", "done");
        w.field_raw("result", &inner);
        w.end_object();
        let doc = w.finish();
        let v = crate::validate::parse_json(&doc).unwrap();
        assert_eq!(
            v.get("result").and_then(|r| r.get("cycles")).unwrap(),
            &crate::validate::JsonValue::Number(7.0)
        );
    }

    #[test]
    fn non_finite_fields_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("x", f64::INFINITY, 3);
        w.end_object();
        assert_eq!(w.finish(), "{\n  \"x\": null\n}\n");
    }
}
