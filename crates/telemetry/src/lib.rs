//! Unified telemetry for the CoopRT reproduction.
//!
//! The simulator measures a lot — cache/DRAM/MSHR counters, predictor
//! stats, per-warp latencies — but counters alone cannot explain *why*
//! a run behaved the way it did. This crate is the observability layer
//! the rest of the workspace plugs into:
//!
//! - [`Tracer`] — a zero-overhead-when-disabled handle for sim-time
//!   event tracing. The engine, RT units, LBU and memory hierarchy emit
//!   typed, cycle-stamped [`TraceEvent`]s through it; when the tracer is
//!   disabled the emission closure is never run and the hot path pays a
//!   single branch on an `Option`.
//! - [`chrome_trace_json`] — exports a captured [`TraceLog`] as Chrome
//!   trace-event JSON loadable in Perfetto (`ui.perfetto.dev`), with
//!   warps, RT-unit fetch streams, the LBU, caches and DRAM channels as
//!   separate tracks.
//! - [`JsonWriter`] — the hand-rolled JSON emitter shared by the trace
//!   exporter, the metrics report in `cooprt-core`, and the `simperf`
//!   bench (correct string escaping, pretty and inline container
//!   styles, fixed-precision floats). The workspace has no external
//!   dependencies, so this is the one JSON producer everything uses.
//! - [`Profiler`] / [`SpanRecorder`] — host-side wall-clock spans.
//!   `Profiler` is the single-owner collection batch tools fold into
//!   reports; `SpanRecorder` is the cloneable, zero-cost-when-disabled
//!   handle the serve path threads through its dispatcher and executor
//!   to build per-request span trees (exported via
//!   [`host_spans_chrome_json`]).
//! - [`Logger`] — leveled structured logging as JSON lines, filtered
//!   by the `COOPRT_LOG` level/target grammar, zero-cost when disabled
//!   (the field closure never runs).
//! - [`PromWriter`] / [`FixedHistogram`] / [`validate_prometheus`] —
//!   Prometheus text-format exposition for the serve path's
//!   `GET /metrics`, with an in-tree format validator.
//! - [`RollingWindow`] — per-second rolling-window latency quantiles,
//!   SLO attainment and error-budget burn for the serve path.
//! - [`validate_chrome_trace`] — a tiny in-tree checker (recursive
//!   descent JSON parser + per-track timestamp monotonicity) so a
//!   malformed writer fails CI, not Perfetto.
//!
//! The hard invariant, enforced by the `golden_cycles` suite in
//! `cooprt-bench`: telemetry is purely observational. Running a frame
//! with the tracer fully enabled must produce bitwise-identical cycle
//! counts to an untraced run.
//!
//! # Examples
//!
//! ```
//! use cooprt_telemetry::{chrome_trace_json, EventKind, TraceMeta, Tracer};
//!
//! let tracer = Tracer::enabled();
//! tracer.emit(17, || EventKind::WarpIssue { sm: 0, warp: 3 });
//! let log = tracer.take();
//! assert_eq!(log.events.len(), 1);
//! let json = chrome_trace_json(&log, &TraceMeta::new("example"));
//! assert!(json.contains("\"traceEvents\""));
//! ```

mod chrome;
mod json;
mod log;
mod prom;
mod slo;
mod spans;
mod trace;
mod validate;

pub use chrome::{
    chrome_trace_json, host_spans_chrome_json, RequestSpans, TraceMeta, TRACE_SCHEMA_VERSION,
};
pub use json::{json_escape, JsonWriter};
pub use log::{LogFields, LogFilter, LogLevel, LogValue, Logger};
pub use prom::{
    prom_escape, validate_prometheus, FixedHistogram, HistogramSnapshot, PromCheck, PromKind,
    PromWriter,
};
pub use slo::{RollingWindow, SloConfig, SloSnapshot, MAX_SAMPLES_PER_SEC};
pub use spans::{HostSpan, Profiler, Span, SpanRecorder, MAX_SPANS_PER_RECORDER};
pub use trace::{AccessOutcome, CacheLevel, EventKind, TraceEvent, TraceLog, Tracer};
pub use validate::{parse_json, validate_chrome_trace, JsonValue, TraceCheck};
