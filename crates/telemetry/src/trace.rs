//! Sim-time event tracing: the [`Tracer`] handle and event taxonomy.
//!
//! Every simulator component that makes a scheduling-relevant decision
//! holds a cloned [`Tracer`]. When tracing is disabled (the default)
//! the handle is a `None` and [`Tracer::emit`] is a single branch — the
//! event-construction closure is never even run, so the hot path pays
//! nothing for the instrumentation.
//!
//! When enabled, events go into a shared, mutex-protected buffer with a
//! configurable capacity. Past the capacity, events are *counted* but
//! not stored (`dropped`), which keeps memory bounded while the
//! emission path still executes identically — important because the
//! no-perturbation invariant is proven by running `golden_cycles` with
//! a capacity-limited tracer fully enabled.

use std::sync::{Arc, Mutex};

/// Which cache level a [`EventKind::CacheAccess`] probe hit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheLevel {
    /// Per-SM first-level cache.
    L1,
    /// Shared second-level cache.
    L2,
}

/// Outcome of a single cache-line probe.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was absent and a fill was started.
    Miss,
    /// The line was already in flight; the request merged into the
    /// existing MSHR entry.
    MshrMerge,
}

/// A typed simulator event. The variants cover every layer of the
/// machine: SM warp scheduling, the RT unit's warp buffer and fetch
/// path, the LBU, and the memory hierarchy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A queued warp was activated on an SM.
    WarpIssue {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
    },
    /// A warp finished its final phase and was reaped.
    WarpRetire {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
    },
    /// A `trace_ray` instruction entered the RT unit's warp buffer.
    TraceBegin {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
        /// Number of rays active in the warp at issue.
        active_rays: u32,
    },
    /// A `trace_ray` instruction retired from the warp buffer.
    TraceEnd {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
        /// Cycle the instruction was issued at (span start).
        issued_at: u64,
    },
    /// One coalesced node fetch was issued to the memory hierarchy.
    NodeFetch {
        /// SM index.
        sm: u32,
        /// Global warp id of the fetching warp-buffer slot.
        warp: u32,
        /// Node address fetched.
        addr: u64,
        /// Number of threads coalesced onto this address.
        threads: u32,
        /// Cycle the response will be ready.
        ready_at: u64,
    },
    /// A ready node response was popped from the response FIFO.
    ResponsePop {
        /// SM index.
        sm: u32,
        /// Node address of the completed fetch.
        addr: u64,
    },
    /// The LBU paired a helper thread with a main thread and moved one
    /// stack node (with `main_tid` handoff for result forwarding).
    LbuMove {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
        /// Helper (idle) thread lane.
        helper: u32,
        /// Main (busy) thread lane the node was stolen from.
        main: u32,
        /// The main-thread id propagated to the helper.
        main_tid: u32,
    },
    /// A cache-line probe at L1 or L2.
    CacheAccess {
        /// Requesting SM index.
        sm: u32,
        /// Which level was probed.
        level: CacheLevel,
        /// Line address probed.
        line: u64,
        /// Probe outcome.
        outcome: AccessOutcome,
    },
    /// A service-layer request was attached to this simulation run
    /// (emitted at cycle 0 by `cooprt-serve` workers so every event in
    /// a per-request trace can be joined back to the HTTP request id).
    Request {
        /// Server-assigned request id (also returned to the client in
        /// the `X-Request-Id` response header).
        id: u64,
    },
    /// One ray-reordering pass ran in the engine front end: the
    /// pending threads were key-sorted before being packed into warps
    /// (first-wave formation, or a between-wave compaction re-form).
    Reorder {
        /// Compaction wave index (0 = first-wave formation).
        wave: u32,
        /// Threads keyed and sorted in this pass.
        rays: u32,
        /// Threads whose position changed relative to the unsorted
        /// order.
        moved: u32,
        /// Non-empty counting-sort buckets.
        buckets_occupied: u32,
    },
    /// The ray-path predictor produced a candidate entry node: this
    /// lane's any-hit traversal starts `depth` levels below the root
    /// instead of at the root (go-up-level fallback restores coverage
    /// on a subtree miss, so images are unchanged).
    Predict {
        /// SM index.
        sm: u32,
        /// Global warp id.
        warp: u32,
        /// Lane whose traversal was redirected.
        lane: u32,
        /// Predicted BVH entry node address.
        entry: u64,
        /// Tree depth of the entry node (root = 0).
        depth: u32,
    },
    /// A DRAM channel data-bus occupancy interval.
    DramBusy {
        /// Channel index.
        channel: u32,
        /// Cycle the transfer starts occupying the channel.
        start: u64,
        /// Channel-busy duration in cycles.
        service: u64,
        /// Bytes transferred.
        bytes: u32,
    },
}

/// A cycle-stamped [`EventKind`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Simulation cycle the event was emitted at.
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
}

#[derive(Debug)]
struct LogInner {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct Shared {
    log: Mutex<LogInner>,
}

/// The events captured by an enabled [`Tracer`].
#[derive(Debug, Default)]
pub struct TraceLog {
    /// Captured events, in emission order.
    pub events: Vec<TraceEvent>,
    /// Events emitted past the buffer capacity (counted, not stored).
    pub dropped: u64,
}

/// Default event-buffer capacity: large enough for a small scene's
/// full event stream, small enough that a fully traced `golden_cycles`
/// run stays within a bounded memory footprint.
pub const DEFAULT_TRACE_CAPACITY: usize = 4_000_000;

/// A cheap, cloneable handle for emitting simulator events.
///
/// Clones share one buffer, so the engine can hand a clone to every SM
/// and to the memory hierarchy and collect everything with a single
/// [`Tracer::take`]. The handle is `Send + Sync` (the buffer sits
/// behind a mutex) because `Simulation` values are shared by reference
/// across the worker pool.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Arc<Shared>>,
}

impl Tracer {
    /// A disabled tracer: [`Tracer::emit`] is a no-op and never runs
    /// the event closure. This is the default everywhere.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled tracer with the default buffer capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled tracer storing at most `capacity` events; further
    /// emissions are counted in [`TraceLog::dropped`] but not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Shared {
                log: Mutex::new(LogInner {
                    events: Vec::new(),
                    capacity,
                    dropped: 0,
                }),
            })),
        }
    }

    /// Whether events are being captured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emit an event at `cycle`. The closure is only invoked when the
    /// tracer is enabled, so disabled tracing costs one branch.
    #[inline]
    pub fn emit(&self, cycle: u64, kind: impl FnOnce() -> EventKind) {
        let Some(shared) = &self.inner else {
            return;
        };
        let mut log = shared.log.lock().expect("trace buffer poisoned");
        if log.events.len() < log.capacity {
            let kind = kind();
            log.events.push(TraceEvent { cycle, kind });
        } else {
            log.dropped += 1;
        }
    }

    /// Drain the captured events, leaving the tracer enabled and empty.
    /// Returns an empty log for a disabled tracer.
    pub fn take(&self) -> TraceLog {
        let Some(shared) = &self.inner else {
            return TraceLog::default();
        };
        let mut log = shared.log.lock().expect("trace buffer poisoned");
        let events = std::mem::take(&mut log.events);
        let dropped = std::mem::take(&mut log.dropped);
        TraceLog { events, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        t.emit(5, || panic!("closure must not run when disabled"));
        assert!(!t.is_enabled());
        assert!(t.take().events.is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::enabled();
        let u = t.clone();
        t.emit(1, || EventKind::WarpIssue { sm: 0, warp: 0 });
        u.emit(2, || EventKind::WarpRetire { sm: 0, warp: 0 });
        let log = t.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.events[0].cycle, 1);
        assert_eq!(log.events[1].cycle, 2);
        assert_eq!(log.dropped, 0);
        // take() drained the shared buffer for both handles.
        assert!(u.take().events.is_empty());
    }

    #[test]
    fn capacity_limit_counts_drops() {
        let t = Tracer::with_capacity(2);
        for c in 0..5 {
            t.emit(c, || EventKind::ResponsePop { sm: 0, addr: c });
        }
        let log = t.take();
        assert_eq!(log.events.len(), 2);
        assert_eq!(log.dropped, 3);
    }
}
