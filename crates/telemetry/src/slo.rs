//! Rolling-window latency/SLO tracking for the serve path.
//!
//! Lifetime counters answer "what happened since boot"; an operator
//! paging on p99 needs "what happened in the last minute". The
//! [`RollingWindow`] keeps one bucket per second over a fixed window,
//! recycles buckets in place (memory is bounded by `window_secs` ×
//! [`MAX_SAMPLES_PER_SEC`]), and derives windowed quantiles, SLO
//! attainment, and error-budget burn on demand.
//!
//! Time is an explicit `now_us` argument rather than a clock read, so
//! the tracker is deterministic under test and callers choose their
//! epoch (the server uses microseconds since process start).
//!
//! Definitions, following the SRE conventions:
//!
//! - a request is **good** when it neither failed (5xx) nor blew the
//!   latency target;
//! - **attainment** is good/total over the window (1.0 when idle);
//! - **error-budget burn** is `(1 - attainment) / (1 - objective)`:
//!   1.0 means failing exactly at the objective's rate, above 1.0 the
//!   budget is burning down.

use crate::json::JsonWriter;

/// Per-second sample cap; beyond it requests are still counted for
/// attainment but their latencies are not stored for quantiles.
pub const MAX_SAMPLES_PER_SEC: usize = 16_384;

/// SLO parameters for a [`RollingWindow`].
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// Window length in seconds (one bucket per second).
    pub window_secs: u64,
    /// Latency target: a request slower than this is not "good".
    pub target_us: u64,
    /// Objective fraction of good requests (e.g. `0.99`).
    pub objective: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window_secs: 60,
            target_us: 250_000,
            objective: 0.99,
        }
    }
}

#[derive(Clone, Debug, Default)]
struct Bucket {
    /// Absolute second this bucket currently holds (u64::MAX = empty).
    second: u64,
    latencies: Vec<u64>,
    total: u64,
    errors: u64,
    good: u64,
}

impl Bucket {
    fn reset(&mut self, second: u64) {
        self.second = second;
        self.latencies.clear();
        self.total = 0;
        self.errors = 0;
        self.good = 0;
    }
}

/// A point-in-time summary of the window (see module docs for the
/// attainment/burn definitions).
#[derive(Clone, Copy, Debug)]
pub struct SloSnapshot {
    /// Window length in seconds.
    pub window_secs: u64,
    /// Requests observed inside the window.
    pub count: u64,
    /// Failed (not-ok) requests inside the window.
    pub errors: u64,
    /// Windowed median latency, microseconds.
    pub p50_us: u64,
    /// Windowed 95th-percentile latency, microseconds.
    pub p95_us: u64,
    /// Windowed 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Windowed maximum latency, microseconds.
    pub max_us: u64,
    /// The latency target the window was configured with.
    pub target_us: u64,
    /// The objective the window was configured with.
    pub objective: f64,
    /// Fraction of good requests (1.0 when the window is empty).
    pub attainment: f64,
    /// Error-budget burn rate (0.0 when the window is empty).
    pub error_budget_burn: f64,
}

impl SloSnapshot {
    /// Writes the snapshot's fields into an open JSON object — shared
    /// by the server's `/metrics` snapshot and `loadgen`'s
    /// BENCH_serve.json.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("window_secs", self.window_secs);
        w.field_u64("count", self.count);
        w.field_u64("errors", self.errors);
        w.field_u64("p50_us", self.p50_us);
        w.field_u64("p95_us", self.p95_us);
        w.field_u64("p99_us", self.p99_us);
        w.field_u64("max_us", self.max_us);
        w.field_u64("target_us", self.target_us);
        w.field_f64("objective", self.objective, 4);
        w.field_f64("attainment", self.attainment, 6);
        w.field_f64("error_budget_burn", self.error_budget_burn, 4);
    }
}

/// The rolling window itself: a ring of per-second buckets.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::{RollingWindow, SloConfig};
///
/// let mut win = RollingWindow::new(SloConfig {
///     window_secs: 10,
///     target_us: 1_000,
///     objective: 0.9,
/// });
/// win.record(0, 500, true); // good
/// win.record(1_000_000, 5_000, true); // too slow
/// let snap = win.snapshot(1_000_000);
/// assert_eq!(snap.count, 2);
/// assert_eq!(snap.attainment, 0.5);
/// assert!((snap.error_budget_burn - 5.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RollingWindow {
    config: SloConfig,
    buckets: Vec<Bucket>,
}

impl RollingWindow {
    /// An empty window (`window_secs` is clamped to at least 1).
    pub fn new(config: SloConfig) -> Self {
        let n = config.window_secs.max(1) as usize;
        RollingWindow {
            config,
            buckets: vec![
                Bucket {
                    second: u64::MAX,
                    ..Bucket::default()
                };
                n
            ],
        }
    }

    /// The configured SLO parameters.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Records one finished request observed at `now_us` (caller's
    /// epoch) with the given latency; `ok` is false for 5xx-class
    /// failures.
    pub fn record(&mut self, now_us: u64, latency_us: u64, ok: bool) {
        let second = now_us / 1_000_000;
        let n = self.buckets.len() as u64;
        let bucket = &mut self.buckets[(second % n) as usize];
        if bucket.second != second {
            bucket.reset(second);
        }
        bucket.total += 1;
        if !ok {
            bucket.errors += 1;
        }
        if ok && latency_us <= self.config.target_us {
            bucket.good += 1;
        }
        if bucket.latencies.len() < MAX_SAMPLES_PER_SEC {
            bucket.latencies.push(latency_us);
        }
    }

    /// Summarizes the window ending at `now_us`: only buckets whose
    /// second falls inside `(now - window, now]` contribute (stale
    /// ring slots are skipped, not recycled).
    pub fn snapshot(&self, now_us: u64) -> SloSnapshot {
        let now_sec = now_us / 1_000_000;
        let oldest = now_sec.saturating_sub(self.config.window_secs.max(1) - 1);
        let mut latencies: Vec<u64> = Vec::new();
        let mut count = 0u64;
        let mut errors = 0u64;
        let mut good = 0u64;
        for bucket in &self.buckets {
            if bucket.second < oldest || bucket.second > now_sec {
                continue;
            }
            count += bucket.total;
            errors += bucket.errors;
            good += bucket.good;
            latencies.extend_from_slice(&bucket.latencies);
        }
        latencies.sort_unstable();
        let quantile = |q: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[idx]
        };
        let attainment = if count == 0 {
            1.0
        } else {
            good as f64 / count as f64
        };
        let budget = 1.0 - self.config.objective;
        let error_budget_burn = if budget <= 0.0 {
            if attainment < 1.0 {
                f64::MAX
            } else {
                0.0
            }
        } else {
            (1.0 - attainment) / budget
        };
        SloSnapshot {
            window_secs: self.config.window_secs.max(1),
            count,
            errors,
            p50_us: quantile(0.5),
            p95_us: quantile(0.95),
            p99_us: quantile(0.99),
            max_us: latencies.last().copied().unwrap_or(0),
            target_us: self.config.target_us,
            objective: self.config.objective,
            attainment,
            error_budget_burn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::parse_json;

    fn config(window_secs: u64) -> SloConfig {
        SloConfig {
            window_secs,
            target_us: 1_000,
            objective: 0.9,
        }
    }

    #[test]
    fn empty_window_is_healthy() {
        let win = RollingWindow::new(config(10));
        let snap = win.snapshot(5_000_000);
        assert_eq!(snap.count, 0);
        assert_eq!(snap.attainment, 1.0);
        assert_eq!(snap.error_budget_burn, 0.0);
        assert_eq!(snap.p99_us, 0);
    }

    #[test]
    fn quantiles_cover_only_the_window() {
        let mut win = RollingWindow::new(config(5));
        // A huge latency far in the past must age out.
        win.record(0, 1_000_000, true);
        for sec in 100..105u64 {
            win.record(sec * 1_000_000, 100 * sec, true);
        }
        let snap = win.snapshot(104 * 1_000_000);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.max_us, 10_400);
        assert_eq!(snap.p50_us, 10_200);
    }

    #[test]
    fn attainment_counts_slow_and_failed_requests() {
        let mut win = RollingWindow::new(config(10));
        win.record(0, 500, true); // good
        win.record(0, 2_000, true); // too slow
        win.record(0, 100, false); // failed (fast but 5xx)
        win.record(0, 700, true); // good
        let snap = win.snapshot(0);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.errors, 1);
        assert_eq!(snap.attainment, 0.5);
        // objective 0.9 -> budget 0.1; burning 0.5 -> burn rate 5.
        assert!((snap.error_budget_burn - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ring_slots_recycle_without_leaking_old_seconds() {
        let mut win = RollingWindow::new(config(2));
        win.record(0, 100, true);
        win.record(1_000_000, 200, true);
        // Second 2 reuses slot 0; second 0's data must vanish.
        win.record(2_000_000, 300, true);
        let snap = win.snapshot(2_000_000);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_us, 300);
        // And a snapshot far in the future sees nothing.
        assert_eq!(win.snapshot(100_000_000).count, 0);
    }

    #[test]
    fn snapshot_renders_parsable_json_fields() {
        let mut win = RollingWindow::new(SloConfig::default());
        win.record(0, 42_000, true);
        let snap = win.snapshot(0);
        let mut w = JsonWriter::new();
        w.begin_inline_object();
        snap.write_fields(&mut w);
        w.end_object();
        let doc = parse_json(&w.finish()).expect("slo snapshot parses");
        assert_eq!(doc.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("attainment").unwrap().as_f64(), Some(1.0));
        assert_eq!(doc.get("p99_us").unwrap().as_f64(), Some(42_000.0));
    }

    #[test]
    fn per_second_sample_cap_bounds_memory_but_not_counts() {
        let mut win = RollingWindow::new(config(1));
        for _ in 0..(MAX_SAMPLES_PER_SEC + 10) {
            win.record(0, 100, true);
        }
        let snap = win.snapshot(0);
        assert_eq!(snap.count, (MAX_SAMPLES_PER_SEC + 10) as u64);
        assert_eq!(snap.p99_us, 100);
    }
}
