//! Export a [`TraceLog`] as Chrome trace-event JSON for Perfetto.
//!
//! The output is the classic `{"traceEvents": [...]}` object format
//! understood by `ui.perfetto.dev` and `chrome://tracing`. Simulation
//! cycles are written as microsecond timestamps (1 cycle = 1 µs), so
//! Perfetto's time axis reads directly in cycles.
//!
//! Track layout: each SM is a process (`SM <k>`) whose threads are the
//! individual warps plus an `RT fetch` track (node-fetch issues and
//! response-FIFO pops) and an `LBU` track (pairing events). The memory
//! hierarchy is one process (`Memory`) whose threads are the per-SM L1
//! caches, the shared L2, and each DRAM channel. Durations exist for
//! `trace_ray` (warp-buffer residency) and `dram_xfer` (channel busy
//! interval); everything else is an instant.

use crate::json::JsonWriter;
use crate::spans::HostSpan;
use crate::trace::{AccessOutcome, CacheLevel, EventKind, TraceLog};
use std::collections::BTreeMap;

/// Version of the exported trace schema (recorded in the document's
/// `metadata` object). Bump when track layout or event names change.
/// v2 adds the `predict` instant on the RT fetch track.
pub const TRACE_SCHEMA_VERSION: u32 = 2;

/// Process id used for the memory-hierarchy tracks.
const MEM_PID: u64 = 0;
/// Thread id of the shared L2 track inside the memory process.
const L2_TID: u64 = 500_000;
/// Base thread id of DRAM channel tracks inside the memory process.
const DRAM_TID_BASE: u64 = 600_000;
/// Thread id of the RT-unit fetch track inside each SM process.
const RT_FETCH_TID: u64 = 900_000;
/// Thread id of the LBU track inside each SM process.
const LBU_TID: u64 = 900_001;
/// Process id of the service-layer track (request markers).
const SERVE_PID: u64 = 999_999;
/// Process id of the front-end track (ray-reordering passes).
const FRONTEND_PID: u64 = 999_998;

/// Document-level metadata folded into the exported trace.
#[derive(Clone, Debug)]
pub struct TraceMeta {
    title: String,
}

impl TraceMeta {
    /// Create metadata with a human-readable title (typically
    /// `"<scene> <policy>"`).
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
        }
    }
}

struct Row {
    name: String,
    ph: char,
    ts: u64,
    dur: Option<u64>,
    pid: u64,
    tid: u64,
    args: Vec<(&'static str, u64)>,
}

/// Destructured event mapping: `(pid, tid, thread name, event name,
/// phase, ts, dur, args)`.
type RowParts = (
    u64,
    u64,
    String,
    &'static str,
    char,
    u64,
    Option<u64>,
    Vec<(&'static str, u64)>,
);

fn sm_pid(sm: u32) -> u64 {
    1 + u64::from(sm)
}

fn cache_event_name(level: CacheLevel, outcome: AccessOutcome) -> &'static str {
    match (level, outcome) {
        (CacheLevel::L1, AccessOutcome::Hit) => "l1_hit",
        (CacheLevel::L1, AccessOutcome::Miss) => "l1_miss",
        (CacheLevel::L1, AccessOutcome::MshrMerge) => "l1_mshr_merge",
        (CacheLevel::L2, AccessOutcome::Hit) => "l2_hit",
        (CacheLevel::L2, AccessOutcome::Miss) => "l2_miss",
        (CacheLevel::L2, AccessOutcome::MshrMerge) => "l2_mshr_merge",
    }
}

/// Render `log` as a Chrome trace-event JSON document.
///
/// Events are stably sorted by timestamp before writing, so within
/// every `(pid, tid)` track timestamps are non-decreasing in file
/// order (verified by [`crate::validate_chrome_trace`]).
pub fn chrome_trace_json(log: &TraceLog, meta: &TraceMeta) -> String {
    let mut rows: Vec<Row> = Vec::with_capacity(log.events.len());
    // Track registry: (pid, tid) -> display name, plus pid -> name.
    let mut procs: BTreeMap<u64, String> = BTreeMap::new();
    let mut threads: BTreeMap<(u64, u64), String> = BTreeMap::new();

    let track = |procs: &mut BTreeMap<u64, String>,
                 threads: &mut BTreeMap<(u64, u64), String>,
                 pid: u64,
                 tid: u64,
                 thread_name: String| {
        procs.entry(pid).or_insert_with(|| {
            if pid == MEM_PID {
                "Memory".to_string()
            } else if pid == SERVE_PID {
                "Server".to_string()
            } else if pid == FRONTEND_PID {
                "FrontEnd".to_string()
            } else {
                format!("SM {}", pid - 1)
            }
        });
        threads.entry((pid, tid)).or_insert(thread_name);
    };

    for ev in &log.events {
        let (pid, tid, thread_name, name, ph, ts, dur, args): RowParts = match ev.kind {
            EventKind::WarpIssue { sm, warp } => (
                sm_pid(sm),
                u64::from(warp),
                format!("warp {warp}"),
                "warp_issue",
                'i',
                ev.cycle,
                None,
                vec![],
            ),
            EventKind::WarpRetire { sm, warp } => (
                sm_pid(sm),
                u64::from(warp),
                format!("warp {warp}"),
                "warp_retire",
                'i',
                ev.cycle,
                None,
                vec![],
            ),
            EventKind::TraceBegin {
                sm,
                warp,
                active_rays,
            } => (
                sm_pid(sm),
                u64::from(warp),
                format!("warp {warp}"),
                "trace_ray_issue",
                'i',
                ev.cycle,
                None,
                vec![("active_rays", u64::from(active_rays))],
            ),
            EventKind::TraceEnd {
                sm,
                warp,
                issued_at,
            } => (
                sm_pid(sm),
                u64::from(warp),
                format!("warp {warp}"),
                "trace_ray",
                'X',
                issued_at,
                Some(ev.cycle - issued_at),
                vec![],
            ),
            EventKind::NodeFetch {
                sm,
                warp,
                addr,
                threads,
                ready_at,
            } => (
                sm_pid(sm),
                RT_FETCH_TID,
                "RT fetch".to_string(),
                "node_fetch",
                'i',
                ev.cycle,
                None,
                vec![
                    ("warp", u64::from(warp)),
                    ("addr", addr),
                    ("threads", u64::from(threads)),
                    ("ready_at", ready_at),
                ],
            ),
            EventKind::ResponsePop { sm, addr } => (
                sm_pid(sm),
                RT_FETCH_TID,
                "RT fetch".to_string(),
                "response_pop",
                'i',
                ev.cycle,
                None,
                vec![("addr", addr)],
            ),
            EventKind::LbuMove {
                sm,
                warp,
                helper,
                main,
                main_tid,
            } => (
                sm_pid(sm),
                LBU_TID,
                "LBU".to_string(),
                "lbu_move",
                'i',
                ev.cycle,
                None,
                vec![
                    ("warp", u64::from(warp)),
                    ("helper", u64::from(helper)),
                    ("main", u64::from(main)),
                    ("main_tid", u64::from(main_tid)),
                ],
            ),
            EventKind::CacheAccess {
                sm,
                level,
                line,
                outcome,
            } => {
                let (tid, tname) = match level {
                    CacheLevel::L1 => (u64::from(sm), format!("L1 SM{sm}")),
                    CacheLevel::L2 => (L2_TID, "L2".to_string()),
                };
                (
                    MEM_PID,
                    tid,
                    tname,
                    cache_event_name(level, outcome),
                    'i',
                    ev.cycle,
                    None,
                    vec![("line", line), ("sm", u64::from(sm))],
                )
            }
            EventKind::Predict {
                sm,
                warp,
                lane,
                entry,
                depth,
            } => (
                sm_pid(sm),
                RT_FETCH_TID,
                "RT fetch".to_string(),
                "predict",
                'i',
                ev.cycle,
                None,
                vec![
                    ("warp", u64::from(warp)),
                    ("lane", u64::from(lane)),
                    ("entry", entry),
                    ("depth", u64::from(depth)),
                ],
            ),
            EventKind::Reorder {
                wave,
                rays,
                moved,
                buckets_occupied,
            } => (
                FRONTEND_PID,
                0,
                "reorder".to_string(),
                "reorder_pass",
                'i',
                ev.cycle,
                None,
                vec![
                    ("wave", u64::from(wave)),
                    ("rays", u64::from(rays)),
                    ("moved", u64::from(moved)),
                    ("buckets_occupied", u64::from(buckets_occupied)),
                ],
            ),
            EventKind::Request { id } => (
                SERVE_PID,
                0,
                "requests".to_string(),
                "request",
                'i',
                ev.cycle,
                None,
                vec![("id", id)],
            ),
            EventKind::DramBusy {
                channel,
                start,
                service,
                bytes,
            } => (
                MEM_PID,
                DRAM_TID_BASE + u64::from(channel),
                format!("DRAM ch{channel}"),
                "dram_xfer",
                'X',
                start,
                Some(service),
                vec![("bytes", u64::from(bytes))],
            ),
        };
        track(&mut procs, &mut threads, pid, tid, thread_name);
        rows.push(Row {
            name: name.to_string(),
            ph,
            ts,
            dur,
            pid,
            tid,
            args,
        });
    }

    // Stable sort by timestamp: per-track order is then non-decreasing
    // (X spans are emitted at completion time but stamped at start).
    rows.sort_by_key(|r| r.ts);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("displayTimeUnit", "ms");
    w.begin_object_field("metadata");
    w.field_str("title", &meta.title);
    w.field_str("clock", "1 sim cycle = 1 us");
    w.field_u64("schema_version", u64::from(TRACE_SCHEMA_VERSION));
    w.field_u64("events", rows.len() as u64);
    w.field_u64("dropped_events", log.dropped);
    w.end_object();
    w.begin_array("traceEvents");
    for (pid, pname) in &procs {
        w.begin_inline_object();
        w.field_str("name", "process_name");
        w.field_str("ph", "M");
        w.field_u64("pid", *pid);
        w.field_u64("tid", 0);
        w.begin_inline_object_field("args");
        w.field_str("name", pname);
        w.end_object();
        w.end_object();
    }
    for ((pid, tid), tname) in &threads {
        w.begin_inline_object();
        w.field_str("name", "thread_name");
        w.field_str("ph", "M");
        w.field_u64("pid", *pid);
        w.field_u64("tid", *tid);
        w.begin_inline_object_field("args");
        w.field_str("name", tname);
        w.end_object();
        w.end_object();
    }
    for r in &rows {
        w.begin_inline_object();
        w.field_str("name", &r.name);
        w.field_str("ph", &r.ph.to_string());
        w.field_u64("ts", r.ts);
        if let Some(dur) = r.dur {
            w.field_u64("dur", dur);
        }
        if r.ph == 'i' {
            // Instant scope: thread-local.
            w.field_str("s", "t");
        }
        w.field_u64("pid", r.pid);
        w.field_u64("tid", r.tid);
        if !r.args.is_empty() {
            w.begin_inline_object_field("args");
            for (k, v) in &r.args {
                w.field_u64(k, *v);
            }
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// One request's host-side span tree, as stored by the serve
/// dispatcher and exported by [`host_spans_chrome_json`].
#[derive(Clone, Debug)]
pub struct RequestSpans {
    /// The server-assigned request id (the `X-Request-Id` header
    /// value), which is also the cycle-0 [`EventKind::Request`] marker
    /// in the sim-time trace of the same request — load both traces
    /// in Perfetto and the id joins them.
    pub request_id: u64,
    /// Wall-clock spans offset from the request's arrival,
    /// microseconds.
    pub spans: Vec<HostSpan>,
}

/// Renders host-side request span trees as a Chrome trace-event JSON
/// document (1 µs = 1 µs here; these are real wall-clock spans, not
/// simulated cycles).
///
/// Track layout: one `Server` process ([`SERVE_PID`], matching the
/// sim-time trace's request-marker track) with one thread per request
/// named `request <id>`. Spans are complete (`X`) events; rows are
/// stably sorted by timestamp so the document passes
/// [`crate::validate_chrome_trace`].
pub fn host_spans_chrome_json(requests: &[RequestSpans], meta: &TraceMeta) -> String {
    let mut rows: Vec<(u64, &HostSpan)> = Vec::new();
    for req in requests {
        for span in &req.spans {
            rows.push((req.request_id, span));
        }
    }
    rows.sort_by_key(|(_, s)| s.start_us);

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("displayTimeUnit", "ms");
    w.begin_object_field("metadata");
    w.field_str("title", &meta.title);
    w.field_str("clock", "host wall clock, us");
    w.field_u64("schema_version", u64::from(TRACE_SCHEMA_VERSION));
    w.field_u64("events", rows.len() as u64);
    w.end_object();
    w.begin_array("traceEvents");
    w.begin_inline_object();
    w.field_str("name", "process_name");
    w.field_str("ph", "M");
    w.field_u64("pid", SERVE_PID);
    w.field_u64("tid", 0);
    w.begin_inline_object_field("args");
    w.field_str("name", "Server");
    w.end_object();
    w.end_object();
    for req in requests {
        w.begin_inline_object();
        w.field_str("name", "thread_name");
        w.field_str("ph", "M");
        w.field_u64("pid", SERVE_PID);
        w.field_u64("tid", req.request_id);
        w.begin_inline_object_field("args");
        w.field_str("name", &format!("request {}", req.request_id));
        w.end_object();
        w.end_object();
    }
    for (request_id, span) in &rows {
        w.begin_inline_object();
        w.field_str("name", &span.name);
        w.field_str("ph", "X");
        w.field_u64("ts", span.start_us);
        w.field_u64("dur", span.dur_us);
        w.field_u64("pid", SERVE_PID);
        w.field_u64("tid", *request_id);
        w.begin_inline_object_field("args");
        w.field_u64("request_id", *request_id);
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;
    use crate::validate::validate_chrome_trace;

    fn sample_log() -> TraceLog {
        let t = Tracer::enabled();
        t.emit(0, || EventKind::WarpIssue { sm: 0, warp: 4 });
        t.emit(1, || EventKind::TraceBegin {
            sm: 0,
            warp: 4,
            active_rays: 32,
        });
        t.emit(2, || EventKind::NodeFetch {
            sm: 0,
            warp: 4,
            addr: 0x40,
            threads: 7,
            ready_at: 30,
        });
        t.emit(2, || EventKind::CacheAccess {
            sm: 0,
            level: CacheLevel::L1,
            line: 0x40,
            outcome: AccessOutcome::Miss,
        });
        t.emit(2, || EventKind::CacheAccess {
            sm: 0,
            level: CacheLevel::L2,
            line: 0x40,
            outcome: AccessOutcome::Miss,
        });
        t.emit(2, || EventKind::DramBusy {
            channel: 1,
            start: 2,
            service: 4,
            bytes: 64,
        });
        t.emit(30, || EventKind::ResponsePop { sm: 0, addr: 0x40 });
        t.emit(31, || EventKind::LbuMove {
            sm: 0,
            warp: 4,
            helper: 3,
            main: 9,
            main_tid: 9,
        });
        t.emit(40, || EventKind::TraceEnd {
            sm: 0,
            warp: 4,
            issued_at: 1,
        });
        t.emit(41, || EventKind::WarpRetire { sm: 0, warp: 4 });
        t.take()
    }

    #[test]
    fn export_passes_the_in_tree_validator() {
        let json = chrome_trace_json(&sample_log(), &TraceMeta::new("unit test"));
        let check = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(check.events, 10);
        assert!(
            check.tracks >= 5,
            "expected >= 5 tracks, got {}",
            check.tracks
        );
        for name in [
            "warp_issue",
            "warp_retire",
            "trace_ray",
            "node_fetch",
            "response_pop",
            "lbu_move",
            "l1_miss",
            "l2_miss",
            "dram_xfer",
        ] {
            assert!(check.event_names.contains(name), "missing {name}");
        }
    }

    #[test]
    fn reorder_passes_land_on_the_frontend_track() {
        let t = Tracer::enabled();
        t.emit(0, || EventKind::Reorder {
            wave: 0,
            rays: 256,
            moved: 199,
            buckets_occupied: 31,
        });
        t.emit(900, || EventKind::Reorder {
            wave: 1,
            rays: 97,
            moved: 40,
            buckets_occupied: 12,
        });
        let json = chrome_trace_json(&t.take(), &TraceMeta::new("reorder"));
        let check = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(check.events, 2);
        assert!(check.event_names.contains("reorder_pass"));
        assert!(json.contains("\"name\": \"FrontEnd\""));
        assert!(json.contains("\"buckets_occupied\": 31"));
        assert!(json.contains("\"moved\": 199"));
    }

    #[test]
    fn request_markers_land_on_the_server_track() {
        let t = Tracer::enabled();
        t.emit(0, || EventKind::Request { id: 42 });
        t.emit(3, || EventKind::WarpIssue { sm: 0, warp: 0 });
        let json = chrome_trace_json(&t.take(), &TraceMeta::new("req"));
        let check = validate_chrome_trace(&json).expect("valid chrome trace");
        assert!(check.event_names.contains("request"));
        assert!(json.contains("\"name\": \"Server\""));
        assert!(json.contains("\"id\": 42"));
    }

    #[test]
    fn host_span_export_passes_the_validator() {
        let spans = |items: &[(&str, u64, u64)]| -> Vec<HostSpan> {
            items
                .iter()
                .map(|(name, start_us, dur_us)| HostSpan {
                    name: name.to_string(),
                    start_us: *start_us,
                    dur_us: *dur_us,
                })
                .collect()
        };
        let requests = vec![
            RequestSpans {
                request_id: 7,
                spans: spans(&[
                    ("queue_wait", 10, 40),
                    ("scene", 55, 200),
                    ("engine_run", 260, 900),
                    ("serialize", 1165, 30),
                ]),
            },
            RequestSpans {
                request_id: 8,
                spans: spans(&[("queue_wait", 5, 2), ("result_cache", 8, 1)]),
            },
        ];
        let json = host_spans_chrome_json(&requests, &TraceMeta::new("requests"));
        let check = validate_chrome_trace(&json).expect("valid chrome trace");
        assert_eq!(check.events, 6);
        assert_eq!(check.tracks, 2, "one track per request");
        for name in ["queue_wait", "scene", "engine_run", "serialize"] {
            assert!(check.event_names.contains(name), "missing {name}");
        }
        assert!(json.contains("\"name\": \"request 7\""));
        assert!(json.contains("\"request_id\": 8"));
    }

    #[test]
    fn spans_are_stamped_at_start_and_sorted() {
        let json = chrome_trace_json(&sample_log(), &TraceMeta::new("t"));
        // The trace_ray X span (emitted at cycle 40) must be stamped at
        // its issue cycle and sorted before later instants.
        let span_pos = json
            .find("\"trace_ray\", \"ph\": \"X\", \"ts\": 1")
            .unwrap();
        let pop_pos = json.find("\"response_pop\"").unwrap();
        assert!(span_pos < pop_pos);
    }
}
