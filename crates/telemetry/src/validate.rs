//! In-tree JSON parsing and Chrome-trace validation.
//!
//! CI runs the `trace_export` example and feeds the emitted document
//! through [`validate_chrome_trace`], so a malformed writer fails CI
//! rather than failing silently in Perfetto. The parser is a strict
//! little recursive-descent JSON reader — balanced containers, valid
//! string escapes, standard number syntax — and the trace checker
//! additionally enforces the Chrome trace-event contract we rely on:
//! every event names a `(pid, tid)` track, and timestamps within each
//! track are non-decreasing in file order.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up `key` in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON text.
    ///
    /// Numbers use Rust's shortest-round-trip `f64` formatting (and
    /// non-finite values, which JSON cannot represent, become `null`),
    /// so for any value built from finite numbers
    /// `parse_json(&v.to_json_string()) == Ok(v)` — the property the
    /// `cooprt-check` JSON fuzzer exercises.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) if n.is_finite() => out.push_str(&format!("{n}")),
            JsonValue::Number(_) => out.push_str("null"),
            JsonValue::String(s) => {
                out.push('"');
                crate::json::json_escape(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    crate::json::json_escape(out, k);
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Maximum container nesting the parser accepts.
///
/// The parser is recursive-descent, so unbounded nesting converts
/// directly into unbounded native stack growth — on untrusted input
/// (the `cooprt-serve` request path) a few hundred kilobytes of `[`
/// would crash the process with a stack overflow rather than a
/// catchable error. 128 levels is far deeper than any document the
/// workspace produces or accepts while keeping worst-case stack use
/// trivially bounded.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    /// Bumps the container depth, rejecting documents nested past
    /// [`MAX_DEPTH`] (recursion depth == native stack depth here).
    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("containers nested too deeply"));
        }
        Ok(())
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.enter()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|&n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser| {
            let mut n = 0;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
                n += 1;
            }
            n
        };
        if digits(self) == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if digits(self) == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if digits(self) == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

/// Strictly parse a JSON document (must be a single value with only
/// trailing whitespace after it).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Summary returned by a successful [`validate_chrome_trace`] run.
#[derive(Clone, Debug)]
pub struct TraceCheck {
    /// Number of non-metadata trace events.
    pub events: usize,
    /// Number of distinct `(pid, tid)` tracks with events.
    pub tracks: usize,
    /// Distinct non-metadata event names.
    pub event_names: BTreeSet<String>,
}

/// Validate a Chrome trace-event JSON document.
///
/// Checks that the document parses (balanced containers, valid string
/// escapes), that it has a `traceEvents` array whose entries each carry
/// `name`/`ph`/`pid`/`tid`, that non-metadata events have a
/// non-negative numeric `ts` (and `X` spans a non-negative `dur`), and
/// that within every `(pid, tid)` track timestamps are non-decreasing
/// in file order.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc.get("traceEvents").ok_or("missing traceEvents array")?;
    let JsonValue::Array(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut names = BTreeSet::new();
    let mut count = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        let pid = ev
            .get("pid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric pid"))?;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing numeric tid"))?;
        if ph == "M" {
            continue; // metadata events carry no timestamp
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric ts"))?;
        if !(ts >= 0.0 && ts.fract() == 0.0) {
            return Err(format!(
                "event {i} ({name}): ts {ts} not a non-negative integer"
            ));
        }
        if ph == "X" {
            let dur = ev
                .get("dur")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i} ({name}): X span missing dur"))?;
            if dur < 0.0 {
                return Err(format!("event {i} ({name}): negative dur"));
            }
        }
        let track = (pid as u64, tid as u64);
        let ts = ts as u64;
        if let Some(&prev) = last_ts.get(&track) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < {prev} on track pid={} tid={} — \
                     timestamps must be non-decreasing per track",
                    track.0, track.1
                ));
            }
        }
        last_ts.insert(track, ts);
        names.insert(name.to_string());
        count += 1;
    }
    Ok(TraceCheck {
        events: count,
        tracks: last_ts.len(),
        event_names: names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_strings_and_nesting() {
        let v = parse_json(r#"{"a": [1, -2.5, 1e3, true, null], "s": "q\"\\\nA😀"}"#).unwrap();
        let arr = v.get("a").unwrap();
        assert_eq!(
            *arr,
            JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(-2.5),
                JsonValue::Number(1000.0),
                JsonValue::Bool(true),
                JsonValue::Null,
            ])
        );
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "q\"\\\nA😀");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1, 2",
            "{\"a\": }",
            "\"unterminated",
            "\"bad \\x escape\"",
            "01x",
            "{} trailing",
            "\"lone \\ud800 surrogate\"",
        ] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        // Past the depth limit: a typed error. Before the limit was
        // added this was a native stack overflow (process abort).
        for doc in ["[".repeat(100_000), "{\"k\":".repeat(100_000)] {
            let err = parse_json(&doc).unwrap_err();
            assert!(err.contains("nested too deeply"), "{err}");
        }
        // At or under the limit: still parses.
        let deep_ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse_json(&deep_ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(too_deep.len() < 1000); // sanity: rejected by depth, not size
        assert!(parse_json(&too_deep).is_err());
    }

    #[test]
    fn to_json_string_round_trips() {
        let doc = r#"{"a": [1, -2.5, 1e3, true, null, {"x": "q\"\n"}], "b": {}}"#;
        let v = parse_json(doc).unwrap();
        let re = v.to_json_string();
        assert_eq!(parse_json(&re).unwrap(), v);
    }

    #[test]
    fn round_trips_the_writer_escapes() {
        let mut s = String::new();
        crate::json::json_escape(&mut s, "a\"b\\c\nd\u{1}");
        let doc = format!("{{\"k\": \"{s}\"}}");
        let v = parse_json(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "a\"b\\c\nd\u{1}");
    }

    #[test]
    fn trace_validator_accepts_good_and_rejects_regressions() {
        let good = r#"{"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "SM 0"}},
            {"name": "a", "ph": "i", "ts": 5, "s": "t", "pid": 1, "tid": 2},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 2},
            {"name": "a", "ph": "i", "ts": 3, "s": "t", "pid": 1, "tid": 9}
        ]}"#;
        let check = validate_chrome_trace(good).unwrap();
        assert_eq!(check.events, 3);
        assert_eq!(check.tracks, 2);
        assert!(check.event_names.contains("a") && check.event_names.contains("b"));

        let backwards = r#"{"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 2},
            {"name": "a", "ph": "i", "ts": 4, "pid": 1, "tid": 2}
        ]}"#;
        let err = validate_chrome_trace(backwards).unwrap_err();
        assert!(err.contains("non-decreasing"), "{err}");

        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
