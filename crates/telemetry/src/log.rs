//! Leveled structured logging: JSON lines on stderr, filtered by
//! `COOPRT_LOG`.
//!
//! The [`Logger`] follows the workspace's Tracer/Checker pattern: a
//! cheap, cloneable handle whose inner state is an `Option<Arc<..>>`.
//! Disabled (the default everywhere) it costs a single branch per call
//! site and the field-building closure is never run — the same
//! zero-perturbation contract the sim-time [`crate::Tracer`] honors.
//!
//! Enabled, every record becomes exactly one JSON object per line:
//!
//! ```json
//! {"ts_us": 1754650000123456, "level": "info", "target": "serve::http", "msg": "response", "fields": {"status": 200}}
//! ```
//!
//! Lines are machine-first: they parse with the in-tree
//! [`crate::parse_json`] (asserted by CI), keys are fixed, and
//! everything request-specific lives under `fields`. The sink is
//! stderr in production and an in-memory buffer in tests, so suites
//! can assert on emitted lines without capturing process output.
//!
//! # Filter grammar
//!
//! `COOPRT_LOG` is a comma-separated list of directives:
//!
//! - a bare level (`error`, `warn`, `info`, `debug`, `trace`, `off`)
//!   sets the default maximum level;
//! - `target=level` overrides it for any target starting with
//!   `target` (longest prefix wins), e.g.
//!   `COOPRT_LOG=info,serve::queue=trace,serve::http=off`.

use crate::json::JsonWriter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// The operation failed.
    Error,
    /// Something surprising that the service survived.
    Warn,
    /// Request-level lifecycle events.
    Info,
    /// Per-step detail (cache probes, queue claims).
    Debug,
    /// Everything, including hot-path chatter.
    Trace,
}

impl LogLevel {
    /// Lowercase name, as it appears on the wire and in `COOPRT_LOG`.
    pub fn label(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
            LogLevel::Trace => "trace",
        }
    }

    /// Parses a level name; `Ok(None)` means `off`.
    pub fn parse(s: &str) -> Result<Option<LogLevel>, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Some(LogLevel::Error)),
            "warn" => Ok(Some(LogLevel::Warn)),
            "info" => Ok(Some(LogLevel::Info)),
            "debug" => Ok(Some(LogLevel::Debug)),
            "trace" => Ok(Some(LogLevel::Trace)),
            "off" => Ok(None),
            other => Err(format!("unknown log level '{other}'")),
        }
    }
}

/// A parsed `COOPRT_LOG` specification.
#[derive(Clone, Debug)]
pub struct LogFilter {
    default: Option<LogLevel>,
    /// `(target prefix, max level)` overrides; longest prefix wins.
    targets: Vec<(String, Option<LogLevel>)>,
}

impl LogFilter {
    /// Parses a filter spec (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<LogFilter, String> {
        let mut default = None;
        let mut targets = Vec::new();
        for directive in spec.split(',') {
            let directive = directive.trim();
            if directive.is_empty() {
                continue;
            }
            match directive.split_once('=') {
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        return Err(format!("empty target in '{directive}'"));
                    }
                    targets.push((target.to_string(), LogLevel::parse(level)?));
                }
                None => default = LogLevel::parse(directive)?,
            }
        }
        Ok(LogFilter { default, targets })
    }

    /// Whether a record at `level` for `target` passes the filter.
    pub fn enabled(&self, level: LogLevel, target: &str) -> bool {
        let mut max = self.default;
        let mut best = 0;
        for (prefix, cap) in &self.targets {
            if target.starts_with(prefix.as_str()) && prefix.len() >= best {
                best = prefix.len();
                max = *cap;
            }
        }
        max.is_some_and(|m| level <= m)
    }

    /// True when no record can ever pass (lets [`Logger`] collapse to
    /// the disabled handle).
    pub fn is_off(&self) -> bool {
        self.default.is_none() && self.targets.iter().all(|(_, cap)| cap.is_none())
    }
}

/// One field of a structured log record.
#[derive(Clone, Debug)]
pub enum LogValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float, rendered with 3 decimals.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Builder for a record's `fields` object, passed to the emission
/// closure. Only constructed when the record passes the filter.
#[derive(Debug, Default)]
pub struct LogFields {
    fields: Vec<(&'static str, LogValue)>,
}

impl LogFields {
    /// Adds an unsigned-integer field.
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.fields.push((key, LogValue::U64(v)));
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(&mut self, key: &'static str, v: i64) -> &mut Self {
        self.fields.push((key, LogValue::I64(v)));
        self
    }

    /// Adds a float field (3 decimals on the wire).
    pub fn f64(&mut self, key: &'static str, v: f64) -> &mut Self {
        self.fields.push((key, LogValue::F64(v)));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &'static str, v: impl Into<String>) -> &mut Self {
        self.fields.push((key, LogValue::Str(v.into())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &'static str, v: bool) -> &mut Self {
        self.fields.push((key, LogValue::Bool(v)));
        self
    }
}

#[derive(Debug)]
enum Sink {
    Stderr,
    Buffer(Mutex<Vec<String>>),
}

#[derive(Debug)]
struct LoggerShared {
    filter: LogFilter,
    sink: Sink,
    emitted: AtomicU64,
}

/// A cheap, cloneable structured-logging handle.
///
/// Clones share one sink and filter. The disabled handle (the default)
/// makes [`Logger::log`] a single branch; the field closure never
/// runs.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::{LogLevel, Logger};
///
/// let log = Logger::to_buffer("info,quiet=off").unwrap();
/// log.log(LogLevel::Info, "serve", "started", |f| {
///     f.u64("port", 8080);
/// });
/// log.log(LogLevel::Info, "quiet::sub", "dropped", |_| {});
/// let lines = log.captured();
/// assert_eq!(lines.len(), 1);
/// assert!(lines[0].contains("\"port\": 8080"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Logger {
    inner: Option<Arc<LoggerShared>>,
}

impl Logger {
    /// The disabled logger: every [`Logger::log`] is a no-op and never
    /// runs the field closure.
    pub fn disabled() -> Self {
        Logger { inner: None }
    }

    /// A logger writing JSON lines to stderr under `spec` (the
    /// `COOPRT_LOG` grammar). Fails on a malformed spec.
    pub fn to_stderr(spec: &str) -> Result<Logger, String> {
        Self::with_sink(spec, Sink::Stderr)
    }

    /// A logger capturing lines in memory (for tests and smoke
    /// checks); read them back with [`Logger::captured`].
    pub fn to_buffer(spec: &str) -> Result<Logger, String> {
        Self::with_sink(spec, Sink::Buffer(Mutex::new(Vec::new())))
    }

    /// The logger configured by the `COOPRT_LOG` environment variable.
    ///
    /// Unset, empty, or `off` yields the disabled logger. A malformed
    /// spec also disables logging, after a single plain-text complaint
    /// on stderr (a misconfigured filter must not kill the service).
    pub fn from_env() -> Logger {
        match std::env::var("COOPRT_LOG") {
            Ok(spec) if !spec.trim().is_empty() => match Self::to_stderr(&spec) {
                Ok(logger) => logger,
                Err(err) => {
                    eprintln!("cooprt: ignoring malformed COOPRT_LOG ('{err}')");
                    Logger::disabled()
                }
            },
            _ => Logger::disabled(),
        }
    }

    fn with_sink(spec: &str, sink: Sink) -> Result<Logger, String> {
        let filter = LogFilter::parse(spec)?;
        if filter.is_off() {
            return Ok(Logger::disabled());
        }
        Ok(Logger {
            inner: Some(Arc::new(LoggerShared {
                filter,
                sink,
                emitted: AtomicU64::new(0),
            })),
        })
    }

    /// Whether any record could be emitted at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether a record at `level` for `target` would be emitted —
    /// for call sites that want to skip expensive preparation.
    pub fn enabled(&self, level: LogLevel, target: &str) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| s.filter.enabled(level, target))
    }

    /// Emits one record. The `fields` closure is only invoked when the
    /// record passes the filter, so disabled logging costs one branch.
    #[inline]
    pub fn log(
        &self,
        level: LogLevel,
        target: &str,
        msg: &str,
        fields: impl FnOnce(&mut LogFields),
    ) {
        let Some(shared) = &self.inner else {
            return;
        };
        if !shared.filter.enabled(level, target) {
            return;
        }
        let mut f = LogFields::default();
        fields(&mut f);
        let line = render_line(level, target, msg, &f);
        shared.emitted.fetch_add(1, Ordering::Relaxed);
        match &shared.sink {
            Sink::Stderr => {
                use std::io::Write;
                let mut err = std::io::stderr().lock();
                let _ = writeln!(err, "{line}");
            }
            Sink::Buffer(buf) => {
                buf.lock().unwrap_or_else(|e| e.into_inner()).push(line);
            }
        }
    }

    /// Records emitted (post-filter) so far.
    pub fn emitted(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |s| s.emitted.load(Ordering::Relaxed))
    }

    /// Lines captured by a [`Logger::to_buffer`] logger (empty for
    /// every other sink).
    pub fn captured(&self) -> Vec<String> {
        match self.inner.as_deref() {
            Some(LoggerShared {
                sink: Sink::Buffer(buf),
                ..
            }) => buf.lock().unwrap_or_else(|e| e.into_inner()).clone(),
            _ => Vec::new(),
        }
    }
}

/// Renders one record as a single JSON line (no trailing newline).
fn render_line(level: LogLevel, target: &str, msg: &str, f: &LogFields) -> String {
    let ts_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros() as u64);
    let mut w = JsonWriter::new();
    w.begin_inline_object();
    w.field_u64("ts_us", ts_us);
    w.field_str("level", level.label());
    w.field_str("target", target);
    w.field_str("msg", msg);
    w.begin_inline_object_field("fields");
    for (key, value) in &f.fields {
        match value {
            LogValue::U64(v) => w.field_u64(key, *v),
            LogValue::I64(v) => w.field_i64(key, *v),
            LogValue::F64(v) => w.field_f64(key, *v, 3),
            LogValue::Str(v) => w.field_str(key, v),
            LogValue::Bool(v) => w.field_bool(key, *v),
        }
    }
    w.end_object();
    w.end_object();
    w.finish().trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::parse_json;

    #[test]
    fn disabled_logger_never_runs_the_closure() {
        let log = Logger::disabled();
        log.log(LogLevel::Error, "x", "boom", |_| {
            panic!("closure must not run when disabled")
        });
        assert!(!log.is_enabled());
        assert_eq!(log.emitted(), 0);
    }

    #[test]
    fn filtered_out_records_never_run_the_closure() {
        let log = Logger::to_buffer("warn").unwrap();
        log.log(LogLevel::Debug, "serve", "chatty", |_| {
            panic!("closure must not run below the filter level")
        });
        assert_eq!(log.emitted(), 0);
    }

    #[test]
    fn every_line_is_one_parsable_json_object() {
        let log = Logger::to_buffer("trace").unwrap();
        log.log(LogLevel::Info, "serve::http", "response", |f| {
            f.u64("status", 200)
                .str("method", "GET")
                .f64("secs", 0.25)
                .i64("delta", -3)
                .bool("cached", true);
        });
        log.log(LogLevel::Warn, "serve", "quote \"and\\slash", |_| {});
        let lines = log.captured();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(!line.contains('\n'), "one record = one line");
            let doc = parse_json(line).expect("line parses with the in-tree parser");
            assert!(doc.get("ts_us").and_then(|v| v.as_f64()).is_some());
            assert!(doc.get("level").and_then(|v| v.as_str()).is_some());
            assert!(doc.get("fields").is_some());
        }
        let doc = parse_json(&lines[0]).unwrap();
        let fields = doc.get("fields").unwrap();
        assert_eq!(fields.get("status").unwrap().as_f64(), Some(200.0));
        assert_eq!(fields.get("method").unwrap().as_str(), Some("GET"));
        assert_eq!(
            parse_json(&lines[1]).unwrap().get("msg").unwrap().as_str(),
            Some("quote \"and\\slash")
        );
    }

    #[test]
    fn target_prefixes_override_the_default_level() {
        let filter = LogFilter::parse("info,serve::queue=trace,serve::http=off").unwrap();
        assert!(filter.enabled(LogLevel::Info, "engine"));
        assert!(!filter.enabled(LogLevel::Debug, "engine"));
        assert!(filter.enabled(LogLevel::Trace, "serve::queue::worker"));
        assert!(!filter.enabled(LogLevel::Error, "serve::http"));
        // Longest prefix wins.
        let filter = LogFilter::parse("off,serve=warn,serve::http=debug").unwrap();
        assert!(filter.enabled(LogLevel::Debug, "serve::http"));
        assert!(!filter.enabled(LogLevel::Debug, "serve::queue"));
        assert!(!filter.enabled(LogLevel::Error, "engine"));
    }

    #[test]
    fn off_specs_collapse_to_the_disabled_handle() {
        assert!(!Logger::to_buffer("off").unwrap().is_enabled());
        assert!(!Logger::to_buffer("").unwrap().is_enabled());
        assert!(Logger::to_buffer("off,serve=info").unwrap().is_enabled());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(LogFilter::parse("loud").is_err());
        assert!(LogFilter::parse("info,=debug").is_err());
        assert!(LogFilter::parse("serve=verbose").is_err());
    }

    #[test]
    fn clones_share_one_sink() {
        let a = Logger::to_buffer("info").unwrap();
        let b = a.clone();
        a.log(LogLevel::Info, "x", "from a", |_| {});
        b.log(LogLevel::Info, "x", "from b", |_| {});
        assert_eq!(a.captured().len(), 2);
        assert_eq!(b.emitted(), 2);
    }
}
