//! Prometheus text-format exposition: a writer, a fixed-bucket atomic
//! histogram, and an in-tree validator in the spirit of
//! [`crate::validate_chrome_trace`].
//!
//! The workspace has no external dependencies, so the exposition
//! format (version 0.0.4, the `text/plain` scrape format every
//! Prometheus understands) is hand-rolled here — and, like the Chrome
//! trace writer, paired with a strict validator so a malformed
//! exporter fails CI rather than a scrape.
//!
//! The validator is deliberately harder to please than Prometheus
//! itself: besides the grammar (names, label escaping, `# TYPE`
//! before samples, one contiguous block per family) it rejects
//! non-finite counter/gauge/histogram values and histograms whose
//! `le` buckets are unsorted, non-cumulative, missing `+Inf`, or
//! inconsistent with `_count` — all real exporter bugs that scrape
//! fine and then corrupt dashboards silently.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Metric kinds the writer and validator understand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PromKind {
    /// Monotonically non-decreasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative fixed-bucket distribution
    /// (`_bucket`/`_sum`/`_count`).
    Histogram,
}

impl PromKind {
    /// The `# TYPE` keyword.
    pub fn label(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// Escapes a label value per the exposition format (`\\`, `\"`,
/// `\n`).
pub fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats a sample value: integers without a fraction, floats in
/// Rust's shortest round-trip form, non-finite values in Prometheus
/// spelling.
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Incremental writer for one exposition document.
///
/// # Examples
///
/// ```
/// use cooprt_telemetry::{validate_prometheus, PromKind, PromWriter};
///
/// let mut w = PromWriter::new();
/// w.family("cooprt_requests_total", "Requests served.", PromKind::Counter);
/// w.sample("cooprt_requests_total", &[("route", "render")], 42.0);
/// let text = w.finish();
/// assert!(validate_prometheus(&text).is_ok());
/// ```
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a metric family: writes its `# HELP` and `# TYPE` lines.
    /// Every subsequent [`PromWriter::sample`] for this family must
    /// follow before the next `family` call.
    pub fn family(&mut self, name: &str, help: &str, kind: PromKind) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        for c in help.chars() {
            match c {
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind.label());
        self.out.push('\n');
    }

    /// Writes one sample line under the open family. For histograms,
    /// `name` carries the `_bucket`/`_sum`/`_count` suffix.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                self.out.push_str(&prom_escape(v));
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(&format_value(value));
        self.out.push('\n');
    }

    /// Writes a full histogram family body from a snapshot: cumulative
    /// `_bucket` lines (including `+Inf`), then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let bucket = format!("{name}_bucket");
        let mut cumulative = 0u64;
        for (bound, count) in snap.bounds.iter().zip(&snap.counts) {
            cumulative += count;
            let le = bound.to_string();
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            self.sample(&bucket, &with_le, cumulative as f64);
        }
        cumulative += snap.overflow;
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&bucket, &with_le, cumulative as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum as f64);
        self.sample(&format!("{name}_count"), labels, cumulative as f64);
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A lock-free histogram over fixed integer bucket bounds.
///
/// `observe` is two relaxed atomic adds — cheap enough for the serve
/// request path. Bounds are upper-inclusive (`v <= bound` lands in
/// that bucket), matching Prometheus `le` semantics.
#[derive(Debug)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    overflow: AtomicU64,
    sum: AtomicU64,
}

/// Point-in-time copy of a [`FixedHistogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Upper-inclusive bucket bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts.
    pub counts: Vec<u64>,
    /// Observations above the last bound (the `+Inf` bucket's own
    /// count).
    pub overflow: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
}

impl FixedHistogram {
    /// A zeroed histogram over `bounds` (must be non-empty and
    /// strictly increasing).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        match self.bounds.iter().position(|b| value <= *b) {
            Some(i) => self.counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// What [`validate_prometheus`] learned about a document.
#[derive(Debug, Default)]
pub struct PromCheck {
    /// `# TYPE`-declared metric families.
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Family names seen.
    pub names: BTreeSet<String>,
}

/// Validates a Prometheus text-exposition document.
///
/// Grammar and semantics checked: metric/label name charsets, label
/// escaping, `# TYPE` preceding and unique per family, one contiguous
/// block per family, finite non-negative counters, finite gauges, and
/// well-formed histograms (sorted `le`, cumulative counts, `+Inf`
/// present and equal to `_count`).
pub fn validate_prometheus(text: &str) -> Result<PromCheck, String> {
    let mut check = PromCheck::default();
    let mut kinds: BTreeMap<String, PromKind> = BTreeMap::new();
    let mut closed: BTreeSet<String> = BTreeSet::new();
    let mut current: Option<String> = None;
    // Histogram bookkeeping, keyed by (family, non-le labels).
    let mut hist_buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<(String, String), f64> = BTreeMap::new();
    let mut hist_sums: BTreeSet<(String, String)> = BTreeSet::new();

    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {n}: TYPE without name"))?;
            let kind = match parts.next() {
                Some("counter") => PromKind::Counter,
                Some("gauge") => PromKind::Gauge,
                Some("histogram") => PromKind::Histogram,
                Some(other) => return Err(format!("line {n}: unknown TYPE '{other}'")),
                None => return Err(format!("line {n}: TYPE without kind")),
            };
            check_name(name).map_err(|e| format!("line {n}: {e}"))?;
            if kinds.insert(name.to_string(), kind).is_some() {
                return Err(format!("line {n}: duplicate TYPE for '{name}'"));
            }
            if let Some(prev) = current.replace(name.to_string()) {
                closed.insert(prev);
            }
            if closed.contains(name) {
                return Err(format!("line {n}: family '{name}' reopened"));
            }
            check.families += 1;
            check.names.insert(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and free comments
        }

        let (name, labels, value) = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        let family = family_of(&name, &kinds)
            .ok_or(format!("line {n}: sample '{name}' has no preceding TYPE"))?;
        if current.as_deref() != Some(family.as_str()) {
            return Err(format!(
                "line {n}: sample '{name}' outside its family's block"
            ));
        }
        let kind = kinds[&family];
        match kind {
            PromKind::Counter => {
                if !value.is_finite() || value < 0.0 {
                    return Err(format!(
                        "line {n}: counter '{name}' has non-finite or negative value"
                    ));
                }
            }
            PromKind::Gauge => {
                if !value.is_finite() {
                    return Err(format!("line {n}: gauge '{name}' has non-finite value"));
                }
            }
            PromKind::Histogram => {
                let series_labels: Vec<(String, String)> =
                    labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                let series = format!("{series_labels:?}");
                let key = (family.clone(), series);
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .map(|(_, v)| v.as_str())
                        .ok_or(format!("line {n}: histogram bucket without 'le' label"))?;
                    let bound = parse_prom_float(le)
                        .ok_or(format!("line {n}: malformed le value '{le}'"))?;
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!("line {n}: bucket value must be finite and >= 0"));
                    }
                    let buckets = hist_buckets.entry(key).or_default();
                    if let Some((last_le, last_count)) = buckets.last() {
                        if bound <= *last_le {
                            return Err(format!(
                                "line {n}: histogram '{family}' buckets not sorted by le"
                            ));
                        }
                        if value < *last_count {
                            return Err(format!(
                                "line {n}: histogram '{family}' bucket counts not cumulative"
                            ));
                        }
                    }
                    buckets.push((bound, value));
                } else if name.ends_with("_sum") {
                    if !value.is_finite() {
                        return Err(format!("line {n}: histogram '{family}' _sum not finite"));
                    }
                    hist_sums.insert(key);
                } else if name.ends_with("_count") {
                    if !value.is_finite() || value < 0.0 {
                        return Err(format!("line {n}: histogram '{family}' _count invalid"));
                    }
                    hist_counts.insert(key, value);
                } else {
                    return Err(format!(
                        "line {n}: histogram family '{family}' sample '{name}' is not _bucket/_sum/_count"
                    ));
                }
            }
        }
        check.samples += 1;
    }

    for ((family, series), buckets) in &hist_buckets {
        let (last_le, last_count) = buckets
            .last()
            .ok_or(format!("histogram '{family}' has no buckets"))?;
        if !last_le.is_infinite() {
            return Err(format!("histogram '{family}' is missing the +Inf bucket"));
        }
        let key = (family.clone(), series.clone());
        match hist_counts.get(&key) {
            Some(count) if *count == *last_count => {}
            Some(_) => {
                return Err(format!(
                    "histogram '{family}' _count disagrees with the +Inf bucket"
                ))
            }
            None => return Err(format!("histogram '{family}' is missing _count")),
        }
        if !hist_sums.contains(&key) {
            return Err(format!("histogram '{family}' is missing _sum"));
        }
    }

    Ok(check)
}

/// Maps a sample name to its declared family (identity, or the base
/// of a histogram's `_bucket`/`_sum`/`_count` suffix).
fn family_of(name: &str, kinds: &BTreeMap<String, PromKind>) -> Option<String> {
    if kinds.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if kinds.get(base) == Some(&PromKind::Histogram) {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn check_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first
        || !name[1..]
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("invalid metric name '{name}'"));
    }
    Ok(())
}

fn check_label_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if !ok_first
        || !name[1..]
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(format!("invalid label name '{name}'"));
    }
    Ok(())
}

/// Parses a value token, accepting the Prometheus non-finite
/// spellings.
fn parse_prom_float(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse::<f64>().ok().filter(|_| {
            // Reject forms Rust accepts but the exposition format
            // does not ("inf", "nan", hex-ish strings are already
            // rejected by parse).
            !s.chars().any(|c| c.is_ascii_alphabetic())
        }),
    }
}

type Sample = (String, Vec<(String, String)>, f64);

/// Parses one sample line: `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or("sample line without value")?;
    let name = &line[..name_end];
    check_name(name)?;

    let mut labels = Vec::new();
    let mut pos = name_end;
    if bytes[pos] == b'{' {
        pos += 1;
        loop {
            if pos >= bytes.len() {
                return Err("unterminated label set".to_string());
            }
            if bytes[pos] == b'}' {
                pos += 1;
                break;
            }
            let eq = line[pos..]
                .find('=')
                .map(|i| pos + i)
                .ok_or("label without '='")?;
            let lname = &line[pos..eq];
            check_label_name(lname)?;
            if bytes.get(eq + 1) != Some(&b'"') {
                return Err(format!("label '{lname}' value is not quoted"));
            }
            // Unescape the quoted value, validating escapes.
            let mut value = String::new();
            let mut i = eq + 2;
            loop {
                match bytes.get(i) {
                    None => return Err(format!("unterminated value for label '{lname}'")),
                    Some(b'"') => break,
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            _ => {
                                return Err(format!("invalid escape in value for label '{lname}'"))
                            }
                        }
                        i += 2;
                    }
                    Some(_) => {
                        let c = line[i..].chars().next().unwrap();
                        value.push(c);
                        i += c.len_utf8();
                    }
                }
            }
            labels.push((lname.to_string(), value));
            pos = i + 1; // past the closing quote
            match bytes.get(pos) {
                Some(b',') => pos += 1,
                Some(b'}') => {}
                _ => return Err("expected ',' or '}' after label value".to_string()),
            }
        }
    }

    let rest = line[pos..].trim();
    let mut parts = rest.split_whitespace();
    let value_token = parts.next().ok_or("sample line without value")?;
    let value = parse_prom_float(value_token)
        .ok_or_else(|| format!("malformed sample value '{value_token}'"))?;
    if let Some(ts) = parts.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("malformed timestamp '{ts}'"))?;
    }
    if parts.next().is_some() {
        return Err("trailing junk after sample".to_string());
    }
    Ok((name.to_string(), labels, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_histogram() -> FixedHistogram {
        let h = FixedHistogram::new(&[10, 100, 1000]);
        for v in [5, 7, 50, 500, 5000] {
            h.observe(v);
        }
        h
    }

    #[test]
    fn histogram_buckets_are_upper_inclusive() {
        let h = FixedHistogram::new(&[10, 100]);
        h.observe(10); // lands in le=10, not le=100
        h.observe(11);
        h.observe(101);
        let snap = h.snapshot();
        assert_eq!(snap.counts, vec![1, 1]);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.sum, 122);
        assert_eq!(snap.count(), 3);
    }

    #[test]
    fn golden_exposition_document() {
        let mut w = PromWriter::new();
        w.family(
            "cooprt_requests_total",
            "Requests served.",
            PromKind::Counter,
        );
        w.sample("cooprt_requests_total", &[("route", "render")], 3.0);
        w.sample("cooprt_requests_total", &[("route", "metrics")], 1.0);
        w.family("cooprt_queue_depth", "Jobs waiting.", PromKind::Gauge);
        w.sample("cooprt_queue_depth", &[], 2.0);
        w.family(
            "cooprt_latency_us",
            "Request latency, microseconds.",
            PromKind::Histogram,
        );
        w.histogram("cooprt_latency_us", &[], &small_histogram().snapshot());
        let text = w.finish();
        let expected = "\
# HELP cooprt_requests_total Requests served.
# TYPE cooprt_requests_total counter
cooprt_requests_total{route=\"render\"} 3
cooprt_requests_total{route=\"metrics\"} 1
# HELP cooprt_queue_depth Jobs waiting.
# TYPE cooprt_queue_depth gauge
cooprt_queue_depth 2
# HELP cooprt_latency_us Request latency, microseconds.
# TYPE cooprt_latency_us histogram
cooprt_latency_us_bucket{le=\"10\"} 2
cooprt_latency_us_bucket{le=\"100\"} 3
cooprt_latency_us_bucket{le=\"1000\"} 4
cooprt_latency_us_bucket{le=\"+Inf\"} 5
cooprt_latency_us_sum 5562
cooprt_latency_us_count 5
";
        assert_eq!(text, expected, "golden exposition output changed");
        let check = validate_prometheus(&text).expect("golden document validates");
        assert_eq!(check.families, 3);
        assert_eq!(check.samples, 9);
        assert!(check.names.contains("cooprt_latency_us"));
    }

    #[test]
    fn label_values_round_trip_through_escaping() {
        let mut w = PromWriter::new();
        w.family("m", "h", PromKind::Gauge);
        w.sample("m", &[("path", "a\\b\"c\nd")], 1.0);
        let text = w.finish();
        assert!(text.contains(r#"path="a\\b\"c\nd""#));
        validate_prometheus(&text).expect("escaped labels validate");
    }

    #[test]
    fn adversarial_bad_escaping_is_rejected() {
        // Raw backslash-x is not a legal escape.
        let text = "# TYPE m gauge\nm{path=\"a\\xb\"} 1\n";
        assert!(validate_prometheus(text).unwrap_err().contains("escape"));
        // Unterminated label value.
        let text = "# TYPE m gauge\nm{path=\"abc} 1\n";
        assert!(validate_prometheus(text).is_err());
        // Unquoted label value.
        let text = "# TYPE m gauge\nm{path=abc} 1\n";
        assert!(validate_prometheus(text).is_err());
    }

    #[test]
    fn adversarial_nan_and_inf_are_rejected() {
        for (kind, value) in [
            ("counter", "NaN"),
            ("counter", "+Inf"),
            ("counter", "-1"),
            ("gauge", "NaN"),
            ("gauge", "-Inf"),
        ] {
            let text = format!("# TYPE m {kind}\nm {value}\n");
            assert!(
                validate_prometheus(&text).is_err(),
                "{kind} {value} must be rejected"
            );
        }
        // A garbage value token is rejected outright.
        assert!(validate_prometheus("# TYPE m gauge\nm pony\n").is_err());
    }

    #[test]
    fn adversarial_histograms_must_be_sorted_and_cumulative() {
        // Unsorted le.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"100\"} 1\nh_bucket{le=\"10\"} 2\n\
                    h_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 3\n";
        assert!(validate_prometheus(text).unwrap_err().contains("sorted"));
        // Non-cumulative counts.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"10\"} 5\nh_bucket{le=\"100\"} 3\n\
                    h_bucket{le=\"+Inf\"} 5\nh_sum 5\nh_count 5\n";
        assert!(validate_prometheus(text)
            .unwrap_err()
            .contains("cumulative"));
        // Missing +Inf.
        let text = "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_prometheus(text).unwrap_err().contains("+Inf"));
        // _count disagrees with +Inf.
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 4\n";
        assert!(validate_prometheus(text).unwrap_err().contains("_count"));
    }

    #[test]
    fn samples_need_a_preceding_type_in_one_block() {
        assert!(validate_prometheus("m 1\n")
            .unwrap_err()
            .contains("no preceding TYPE"));
        // Interleaved families: m's block is closed by n's TYPE line.
        let text = "# TYPE m gauge\nm 1\n# TYPE n gauge\nn 1\nm 2\n";
        assert!(validate_prometheus(text).unwrap_err().contains("block"));
        // Duplicate TYPE.
        let text = "# TYPE m gauge\n# TYPE m gauge\nm 1\n";
        assert!(validate_prometheus(text).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn bad_names_are_rejected() {
        assert!(validate_prometheus("# TYPE 9m gauge\n9m 1\n").is_err());
        assert!(validate_prometheus("# TYPE m gauge\nm{9l=\"x\"} 1\n").is_err());
    }
}
