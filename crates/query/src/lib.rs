//! Spatial query workloads on the CoopRT RT unit.
//!
//! RT cores answer more than rendering queries: mapping data points to
//! bounding-volume primitives turns BVH traversal into k-nearest-
//! neighbour search, fixed-radius search (the RTX-accelerated
//! neighbour-search trick of RTNN) and point-in-cell containment over
//! AMR grids (Zellmann et al.). This crate drives the cycle-level
//! simulator with exactly those workloads:
//!
//! - [`run_queries`] runs a batch of query points through the full
//!   timing model (warp scheduling, caches, LBU) under any
//!   [`TraversalPolicy`] and returns per-query answers plus the cycle
//!   cost;
//! - [`oracle_answer`] / [`oracle_answers`] compute the same answers by
//!   brute force over the raw [`QueryDomain`] — no BVH, no simulator —
//!   using bit-identical `f32` filters, so the engine's results can be
//!   asserted **exact**, not approximately equal.
//!
//! The exactness argument, in short: gather traversal enumerates every
//! BVH leaf whose AABB contains the query point (a conservative
//! superset of the true neighbours, by the octahedron-inflation
//! construction in `cooprt_scenes::query`), and the shader then applies
//! the same `|q - p|^2 <= r^2` filter and `(dist-bits, index)` ordering
//! the oracle uses. Containment needs no filter at all: cells are
//! disjoint by construction, so the closest hit from inside a cell
//! names it directly.
//!
//! # Examples
//!
//! ```
//! use cooprt_core::{GpuConfig, ShaderKind, TraversalPolicy};
//! use cooprt_query::{oracle_answers, run_queries};
//! use cooprt_scenes::SceneId;
//!
//! let scene = SceneId::Quni.build(2);
//! let cfg = GpuConfig::small(2);
//! let run = run_queries(
//!     &scene, &cfg, TraversalPolicy::CoopRt, ShaderKind::Knn, 16, 0,
//! ).unwrap();
//! assert_eq!(run.answers, oracle_answers(&scene, ShaderKind::Knn, 16, 0));
//! assert!(run.cycles > 0);
//! ```

use cooprt_core::{
    ConfigError, FrameResult, GpuConfig, ShaderKind, ShaderThread, Simulation, TraversalPolicy,
};
use cooprt_scenes::{QueryDomain, Scene};

/// The outcome of one simulated query batch.
#[derive(Clone, Debug)]
pub struct QueryRun {
    /// Per-query answers, indexed by query id: point indices for
    /// `knn`/`rad` (kNN nearest-first, radius ascending), the
    /// containing cell for `cont`.
    pub answers: Vec<Vec<u32>>,
    /// Total batch latency in core cycles.
    pub cycles: u64,
    /// Probe rays dispatched to the RT units.
    pub rays: u64,
    /// The full frame-level measurement record, for callers that want
    /// memory/energy/LBU counters alongside the answers.
    pub frame: FrameResult,
}

/// Runs `count` query points of `kind` against `scene` through the
/// cycle-level simulator.
///
/// Query point `i` is the deterministic sample
/// [`ShaderThread::query_point`]`(scene, i, salt)`, so the same
/// `(scene, count, salt)` triple always asks the same questions — and
/// the brute-force oracle can re-derive them independently.
///
/// The batch is laid out as a `count x 1` thread grid: spatial queries
/// have no raster, the "frame" is just the warp partition.
///
/// # Errors
///
/// Returns [`ConfigError::QueryDomainMismatch`] if the scene lacks the
/// domain `kind` needs, plus the usual frame/config validation errors.
pub fn run_queries(
    scene: &Scene,
    cfg: &GpuConfig,
    policy: TraversalPolicy,
    kind: ShaderKind,
    count: usize,
    salt: u64,
) -> Result<QueryRun, ConfigError> {
    let frame = Simulation::new(scene, cfg, policy)
        .with_sample_salt(salt)
        .run_frame(kind, count, 1)?;
    Ok(QueryRun {
        answers: frame.query_results.clone(),
        cycles: frame.cycles,
        rays: frame.rays,
        frame,
    })
}

/// Brute-force reference answer for query `pixel` — same query point,
/// same `f32` arithmetic, no BVH and no simulator.
///
/// # Panics
///
/// Panics if the scene has no query domain, or if `kind` is not a query
/// shader; callers reach this only after [`run_queries`] validated both.
pub fn oracle_answer(scene: &Scene, kind: ShaderKind, pixel: usize, salt: u64) -> Vec<u32> {
    let domain = scene
        .query
        .as_ref()
        .expect("oracle needs a scene with a query domain");
    let q = ShaderThread::query_point(scene, pixel, salt);
    match kind {
        ShaderKind::Radius => in_radius(domain, q),
        ShaderKind::Knn => {
            let mut found = in_radius(domain, q);
            // Identical total order to the shader: exact f32 squared
            // distance compared as bits, index as the tie-break.
            found.sort_by_key(|&p| {
                (
                    (domain.points[p as usize] - q).length_squared().to_bits(),
                    p,
                )
            });
            found.truncate(domain.k);
            found
        }
        ShaderKind::Contain => domain
            .cell_containing(q)
            .map(|c| c as u32)
            .into_iter()
            .collect(),
        ShaderKind::PathTrace | ShaderKind::AmbientOcclusion | ShaderKind::Shadow => {
            panic!("{:?} is not a query shader", kind)
        }
    }
}

/// [`oracle_answer`] over a whole batch, mirroring [`run_queries`].
pub fn oracle_answers(scene: &Scene, kind: ShaderKind, count: usize, salt: u64) -> Vec<Vec<u32>> {
    (0..count)
        .map(|p| oracle_answer(scene, kind, p, salt))
        .collect()
}

/// Every point index within the domain radius of `q`, ascending.
fn in_radius(domain: &QueryDomain, q: cooprt_math::Vec3) -> Vec<u32> {
    (0..domain.points.len())
        .filter(|&p| domain.within_radius(q, p))
        .map(|p| p as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_scenes::{SceneId, QUERY_SCENES};

    fn kind_for(id: SceneId) -> ShaderKind {
        if id
            .build(1)
            .query
            .as_ref()
            .is_some_and(QueryDomain::is_cells)
        {
            ShaderKind::Contain
        } else {
            ShaderKind::Knn
        }
    }

    #[test]
    fn engine_matches_the_oracle_exactly_on_every_query_scene() {
        let cfg = GpuConfig::small(2);
        for id in QUERY_SCENES {
            let scene = id.build(2);
            let kind = kind_for(id);
            for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
                let run = run_queries(&scene, &cfg, policy, kind, 48, 3).unwrap();
                let want = oracle_answers(&scene, kind, 48, 3);
                assert_eq!(run.answers, want, "{id}/{kind:?}/{policy:?}");
                assert!(run.cycles > 0 && run.rays >= 48);
            }
        }
    }

    #[test]
    fn radius_search_matches_the_oracle() {
        let cfg = GpuConfig::small(2);
        let scene = SceneId::Qclu.build(2);
        // Clusters leave most of the domain empty, so a wide batch is
        // needed before some query lands inside one.
        let run = run_queries(
            &scene,
            &cfg,
            TraversalPolicy::CoopRt,
            ShaderKind::Radius,
            256,
            7,
        )
        .unwrap();
        let want = oracle_answers(&scene, ShaderKind::Radius, 256, 7);
        assert_eq!(run.answers, want);
        assert!(
            want.iter().any(|a| !a.is_empty()),
            "clustered fixture should have in-radius neighbors"
        );
    }

    #[test]
    fn knn_answers_are_bounded_by_k_and_sorted_nearest_first() {
        let scene = SceneId::Qsrf.build(2);
        let domain = scene.query.as_ref().unwrap();
        for (pixel, ans) in oracle_answers(&scene, ShaderKind::Knn, 64, 1)
            .iter()
            .enumerate()
        {
            assert!(ans.len() <= domain.k);
            let q = ShaderThread::query_point(&scene, pixel, 1);
            let d = |p: u32| (domain.points[p as usize] - q).length_squared().to_bits();
            for w in ans.windows(2) {
                assert!((d(w[0]), w[0]) < (d(w[1]), w[1]));
            }
        }
    }

    #[test]
    fn containment_always_resolves_to_exactly_one_cell() {
        let scene = SceneId::Qamr.build(2);
        for ans in oracle_answers(&scene, ShaderKind::Contain, 64, 5) {
            assert_eq!(
                ans.len(),
                1,
                "guard-band sampling keeps every query inside a cell"
            );
        }
    }

    #[test]
    fn oracle_rejects_render_kinds() {
        let scene = SceneId::Quni.build(1);
        let r = std::panic::catch_unwind(|| oracle_answer(&scene, ShaderKind::PathTrace, 0, 0));
        assert!(r.is_err());
    }
}
