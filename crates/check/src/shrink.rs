//! Failing-case minimization.
//!
//! When a seed diverges, the raw case is rarely the smallest
//! reproduction: a 24x24 path-traced frame over 60 triangles on 3 SMs
//! hides the bug in megabytes of trace. [`shrink`] greedily applies
//! size-reducing transformations — halve the resolution, drop clutter
//! triangles, shrink the warp buffer and subwarp scope, collapse to one
//! SM — keeping each step only if the case still fails, until no
//! transformation preserves the failure. The result replays through the
//! same seed-independent [`run_case`](crate::fuzz::run_case) path, so
//! the minimized configuration is what a developer actually debugs.

use crate::fuzz::FuzzCase;
use crate::CheckFailure;

/// Candidate reductions, most aggressive first. Each returns `None`
/// when it cannot reduce the case further.
fn candidates(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzCase) -> bool| {
        let mut c = case.clone();
        if f(&mut c) {
            out.push(c);
        }
    };
    push(&|c| {
        let can = c.clutter > 0;
        c.clutter /= 2; // drop triangles
        can
    });
    push(&|c| {
        let can = c.width > 1;
        c.width = (c.width / 2).max(1); // halve resolution
        can
    });
    push(&|c| {
        let can = c.height > 1;
        c.height = (c.height / 2).max(1);
        can
    });
    push(&|c| {
        let can = c.sm_count > 1;
        c.sm_count = 1;
        can
    });
    push(&|c| {
        let can = c.warp_buffer > 1;
        c.warp_buffer = (c.warp_buffer / 2).max(1); // fewer resident warps
        can
    });
    push(&|c| {
        // Shrink the subwarp scope along the valid 32 -> 16 -> 8 -> 4
        // ladder.
        let can = c.subwarp > 4;
        c.subwarp = (c.subwarp / 2).max(4);
        can
    });
    push(&|c| {
        let can = c.lbu_moves > 1;
        c.lbu_moves = 1;
        can
    });
    out
}

/// Minimizes a failing case. `check` is the oracle runner (normally
/// [`run_case`](crate::fuzz::run_case)); a candidate is adopted only
/// when `check` still fails on it. Returns the fixpoint case together
/// with its failure.
///
/// # Panics
///
/// Panics if `check` passes on `case` — shrinking is only meaningful
/// for a case that fails.
pub fn shrink(
    case: &FuzzCase,
    check: impl Fn(&FuzzCase) -> Result<(), CheckFailure>,
) -> (FuzzCase, CheckFailure) {
    let mut best = case.clone();
    let mut failure = check(&best).expect_err("shrink requires a failing case");
    'outer: loop {
        for cand in candidates(&best) {
            if let Err(f) = check(&cand) {
                best = cand;
                failure = f;
                continue 'outer; // restart from the reduced case
            }
        }
        return (best, failure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic oracle failing whenever the *pixel count* exceeds a
    /// threshold: the shrinker must walk the frame down to the smallest
    /// still-failing size without disturbing unrelated knobs.
    #[test]
    fn shrinks_to_the_smallest_failing_frame() {
        let case = FuzzCase::from_seed(99);
        let fails = |c: &FuzzCase| {
            if c.width * c.height > 12 {
                Err(CheckFailure::new("synthetic", "too many pixels"))
            } else {
                Ok(())
            }
        };
        assert!(fails(&case).is_err(), "seed 99 samples a frame > 12 px");
        let (min, failure) = shrink(&case, fails);
        assert!(min.width * min.height > 12, "result must still fail");
        // No further halving step may keep failing (a dimension already
        // at its floor of 1 has no halving step).
        assert!(
            min.width == 1 || (min.width / 2) * min.height <= 12,
            "halving the width must pass: got {}x{}",
            min.width,
            min.height
        );
        assert!(
            min.height == 1 || min.width * (min.height / 2) <= 12,
            "halving the height must pass: got {}x{}",
            min.width,
            min.height
        );
        assert_eq!(failure.oracle, "synthetic");
        // Knobs untouched by the failing predicate shrink to their
        // floors (the candidates are size reductions, all valid).
        assert_eq!(min.sm_count, 1);
        assert_eq!(min.clutter, 0);
        assert_eq!(min.subwarp, 4);
        assert_eq!(min.seed, case.seed, "seed is preserved for replay");
    }

    #[test]
    fn fixpoint_case_has_no_failing_candidates() {
        let case = FuzzCase::from_seed(5);
        let fails = |c: &FuzzCase| {
            if c.clutter >= 3 {
                Err(CheckFailure::new("synthetic", "clutter"))
            } else {
                Ok(())
            }
        };
        let (min, _) = shrink(&case, fails);
        assert!(min.clutter >= 3);
        assert!(min.clutter / 2 < 3, "halving once more must pass");
    }

    #[test]
    #[should_panic(expected = "failing case")]
    fn shrinking_a_passing_case_is_a_bug() {
        let case = FuzzCase::from_seed(1);
        let _ = shrink(&case, |_| Ok(()));
    }
}
