//! Fuzzing the in-tree JSON parser.
//!
//! The parser (`cooprt_telemetry::parse_json`) sits on the service's
//! untrusted-input path, so "malformed input returns `Err`" is a
//! security property, not a nicety. Three seeded oracles:
//!
//! 1. **Round-trip**: a random [`JsonValue`] tree, serialized with
//!    `to_json_string()` and parsed back, must compare equal — the
//!    writer and parser agree on the grammar, and f64 formatting is
//!    shortest-round-trip exact.
//! 2. **Mutation**: random byte edits (flips, truncations, splices) of
//!    a valid document must parse or fail *cleanly* — `Err`, never a
//!    panic. Every mutant is run under `catch_unwind`.
//! 3. **Adversarial corpus**: fixed regression inputs — deep nesting
//!    (the historical stack-overflow abort), huge and malformed
//!    numbers, truncated prefixes, broken escapes — with the required
//!    outcome pinned per input.
//!
//! Everything derives from explicit 64-bit seeds on the in-tree PRNG,
//! so `--json-seed N` replays exactly.

use crate::CheckFailure;
use cooprt_telemetry::{parse_json, JsonValue};
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Replays one seed through the round-trip and mutation oracles.
pub fn run_json_seed(seed: u64) -> Result<(), CheckFailure> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6a73_6f6e_5f66_757a); // "json_fuz"
    let doc = random_value(&mut rng, 0);
    round_trip(&doc)?;
    let text = doc.to_json_string();
    for _ in 0..16 {
        let mutant = mutate(text.as_bytes(), &mut rng);
        no_panic(&mutant)?;
    }
    Ok(())
}

/// Runs `count` consecutive seeds starting at `start`, plus the fixed
/// adversarial corpus once. Returns the number of seeds run.
pub fn run_json_budget(start: u64, count: u64) -> Result<u64, CheckFailure> {
    adversarial_corpus()?;
    for seed in start..start + count {
        run_json_seed(seed).map_err(|f| {
            CheckFailure::new(
                f.oracle.clone(),
                format!("{} (replay: simcheck --json-seed {seed})", f.detail),
            )
        })?;
    }
    Ok(count)
}

/// A random JSON tree: bounded depth and fan-out, every value kind,
/// strings exercising escapes and non-ASCII.
fn random_value(rng: &mut StdRng, depth: usize) -> JsonValue {
    // Leaves only at the depth limit; containers get rarer with depth.
    let max_kind = if depth >= 6 { 4 } else { 6 };
    match rng.random_range(0usize..max_kind) {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(rng.random()),
        2 => JsonValue::Number(random_number(rng)),
        3 => JsonValue::String(random_string(rng)),
        4 => {
            let n = rng.random_range(0usize..5);
            JsonValue::Array((0..n).map(|_| random_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.random_range(0usize..5);
            JsonValue::Object(
                (0..n)
                    .map(|i| {
                        (
                            format!("{}{i}", random_string(rng)),
                            random_value(rng, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// Numbers spanning magnitudes, signs, and exact integers.
fn random_number(rng: &mut StdRng) -> f64 {
    match rng.random_range(0usize..5) {
        0 => 0.0,
        1 => f64::from(rng.random::<u32>() as i32),
        2 => rng.random::<f64>(),
        3 => rng.random::<f64>() * 1e18 - 5e17,
        _ => rng.random::<f64>() * 1e-12,
    }
}

/// Strings mixing plain ASCII, JSON escapes, and multi-byte UTF-8.
fn random_string(rng: &mut StdRng) -> String {
    const ALPHABET: &[&str] = &[
        "a", "Z", "0", " ", "\"", "\\", "\n", "\t", "\u{1}", "é", "日", "🦀", "/",
    ];
    let n = rng.random_range(0usize..10);
    (0..n)
        .map(|_| ALPHABET[rng.random_range(0usize..ALPHABET.len())])
        .collect()
}

/// Oracle 1: write → parse → compare.
fn round_trip(doc: &JsonValue) -> Result<(), CheckFailure> {
    let text = doc.to_json_string();
    let reparsed = parse_json(&text).map_err(|e| {
        CheckFailure::new(
            "json-roundtrip",
            format!("serializer output failed to parse: {e}\n  text: {text}"),
        )
    })?;
    if &reparsed != doc {
        return Err(CheckFailure::new(
            "json-roundtrip",
            format!("value changed across write/parse\n  text: {text}"),
        ));
    }
    Ok(())
}

/// One random byte-level edit of `text`.
fn mutate(text: &[u8], rng: &mut StdRng) -> Vec<u8> {
    let mut out = text.to_vec();
    if out.is_empty() {
        return vec![rng.random::<u32>() as u8];
    }
    match rng.random_range(0usize..4) {
        0 => {
            // Flip one byte to an arbitrary value.
            let i = rng.random_range(0usize..out.len());
            out[i] = rng.random::<u32>() as u8;
        }
        1 => {
            // Truncate at an arbitrary point.
            out.truncate(rng.random_range(0usize..out.len()));
        }
        2 => {
            // Insert a structural character somewhere.
            let i = rng.random_range(0usize..out.len() + 1);
            let c = [b'{', b'}', b'[', b']', b'"', b',', b':', b'\\', b'e', b'-']
                [rng.random_range(0usize..10)];
            out.insert(i, c);
        }
        _ => {
            // Duplicate a random slice onto the end (grows nesting).
            let a = rng.random_range(0usize..out.len());
            let b = rng.random_range(a..out.len() + 1);
            let slice = out[a..b].to_vec();
            out.extend_from_slice(&slice);
        }
    }
    out
}

/// Oracle 2: the parser must return (either way), not panic.
fn no_panic(input: &[u8]) -> Result<(), CheckFailure> {
    let text = String::from_utf8_lossy(input).into_owned();
    let shown: String = text.chars().take(120).collect();
    let outcome = std::panic::catch_unwind(|| {
        let _ = parse_json(&text);
    });
    outcome.map_err(|_| {
        CheckFailure::new(
            "json-mutation",
            format!("parser panicked on mutated input: {shown:?}"),
        )
    })
}

/// Oracle 3: fixed adversarial inputs with pinned outcomes.
fn adversarial_corpus() -> Result<(), CheckFailure> {
    let must_err: Vec<String> = vec![
        // Deep nesting: used to abort the process via stack overflow
        // before the parser grew its depth limit.
        "[".repeat(100_000),
        "{\"k\":".repeat(100_000),
        format!("{}1{}", "[".repeat(50_000), "]".repeat(50_000)),
        // Truncations and malformed tokens.
        "{".into(),
        "{\"a\"".into(),
        "{\"a\": 1,".into(),
        "[1, 2".into(),
        "\"unterminated".into(),
        "\"bad escape \\q\"".into(),
        "\"half surrogate \\u12".into(),
        "+1".into(),
        "1e".into(),
        "nul".into(),
        "tru".into(),
        "{1: 2}".into(),
        "[1 2]".into(),
        "".into(),
        "\u{0}".into(),
    ];
    for input in &must_err {
        no_panic(input.as_bytes())?;
        if parse_json(input).is_ok() {
            let shown: String = input.chars().take(60).collect();
            return Err(CheckFailure::new(
                "json-adversarial",
                format!("malformed input parsed as Ok: {shown:?}..."),
            ));
        }
    }
    // Huge numbers must parse (to ±inf or 0 is acceptable for f64) —
    // never panic, never reject the grammar.
    let must_ok = [
        "1e999999",
        "-1e999999",
        "1e-999999",
        &format!("[{}]", "9".repeat(400)),
        "0.00000000000000000000000000000001",
        "-0",
        "01", // leading zeros are accepted (lenient, documented)
        "[[[[[[[[[[1]]]]]]]]]]",
    ];
    for input in must_ok {
        no_panic(input.as_bytes())?;
        if let Err(e) = parse_json(input) {
            return Err(CheckFailure::new(
                "json-adversarial",
                format!("grammatical input rejected: {input:?}: {e}"),
            ));
        }
    }
    // Every prefix of a representative document must fail or succeed
    // cleanly (only the full text must succeed).
    let doc = r#"{"scene": "bunny", "spp": 4, "opts": [1.5e3, true, null, "é\n"]}"#;
    for cut in 0..doc.len() {
        if !doc.is_char_boundary(cut) {
            continue;
        }
        no_panic(&doc.as_bytes()[..cut])?;
    }
    if parse_json(doc).is_err() {
        return Err(CheckFailure::new(
            "json-adversarial",
            "representative document failed to parse".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_adversarial_corpus_passes() {
        adversarial_corpus().unwrap();
    }

    #[test]
    fn a_seed_budget_passes() {
        assert_eq!(run_json_budget(0, 32).unwrap(), 32);
    }

    #[test]
    fn seeds_are_deterministic() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        assert_eq!(random_value(&mut rng_a, 0), random_value(&mut rng_b, 0));
    }

    #[test]
    fn mutation_actually_changes_bytes() {
        let mut rng = StdRng::seed_from_u64(3);
        let original = br#"{"a": 1}"#;
        let changed = (0..32).any(|_| mutate(original, &mut rng) != original.to_vec());
        assert!(changed);
    }
}
