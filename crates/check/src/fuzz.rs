//! Deterministic config/scene fuzzing.
//!
//! A [`FuzzCase`] is fully determined by a 64-bit seed: it samples a
//! simulator configuration (cache geometry, MSHR slots, warp-buffer and
//! subwarp sizes, DRAM channels, traversal knobs) and a small procedural
//! scene, then [`run_case`] drives every differential oracle over it:
//!
//! 1. the flat cache, slotted MSHR and bucketed event calendar against
//!    their map/heap reference models on seeded operation traces;
//! 2. the BVH reference traversal against brute force over the soup;
//! 3. a full baseline-vs-CoopRT frame pair — images must be bitwise
//!    identical, and both runs execute with the engine's invariant
//!    [`Checker`] enabled and must finish clean.
//!
//! Everything derives from the in-tree PRNG with explicit seeds, so a
//! failing seed replays exactly (`examples/simcheck.rs --seed N`).

use crate::oracle::{self, CalendarOp, MshrOp};
use crate::{shrink, CheckFailure};
use cooprt_core::{
    Checker, GpuConfig, ShaderKind, Simulation, StealPosition, SubwarpMode, TraversalOrder,
    TraversalPolicy,
};
use cooprt_math::{Aabb, Ray, Rgb, Vec3};
use cooprt_scenes::{quad, scatter_clutter, Camera, Material, Scene, SceneBuilder};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::fmt;

/// One fuzzed simulator configuration plus procedural scene, fully
/// determined by [`FuzzCase::from_seed`].
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzCase {
    /// The generating seed (kept through shrinking for reporting).
    pub seed: u64,
    /// Frame width, pixels.
    pub width: usize,
    /// Frame height, pixels.
    pub height: usize,
    /// Clutter triangles scattered above the ground plane.
    pub clutter: usize,
    /// Seed of the scene's triangle scatter.
    pub scene_seed: u64,
    /// Shader driven over the frame.
    pub shader: ShaderKind,
    /// SM (and RT-unit) count.
    pub sm_count: usize,
    /// RT warp-buffer entries per unit.
    pub warp_buffer: usize,
    /// LBU subwarp scope (4, 8, 16 or 32).
    pub subwarp: usize,
    /// LBU node moves per subwarp per cycle.
    pub lbu_moves: u32,
    /// DFS (stack) or BFS (queue) traversal.
    pub order: TraversalOrder,
    /// Which stack end the LBU steals from.
    pub steal: StealPosition,
    /// All-groups or one-group LBU servicing.
    pub mode: SubwarpMode,
    /// Cache line size, bytes (all levels).
    pub line_bytes: u32,
    /// L1 capacity, bytes.
    pub l1_bytes: u64,
    /// L1 associativity (`0` = fully associative).
    pub l1_assoc: u32,
    /// L1 MSHR slots.
    pub l1_mshr: usize,
    /// L2 capacity, bytes.
    pub l2_bytes: u64,
    /// L2 associativity (`0` = fully associative).
    pub l2_assoc: u32,
    /// L2 MSHR slots.
    pub l2_mshr: usize,
    /// Independent DRAM channels.
    pub dram_channels: usize,
}

impl FuzzCase {
    /// Samples a case from `seed`. The same seed always yields the same
    /// case, on every platform.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let line_bytes = [32u32, 64, 128][rng.random_range(0usize..3)];
        // Cache geometry is drawn in *lines* (4+ at the L1, 32+ at the
        // L2), so every sampled associativity below satisfies the
        // constructor's `assoc <= line count` requirement.
        let l1_lines = rng.random_range(4u64..64);
        let l1_assoc = [0u32, 1, 2, 4][rng.random_range(0usize..4)];
        let l2_lines = rng.random_range(32u64..256);
        let l2_assoc = [0u32, 2, 4, 8, 16][rng.random_range(0usize..5)];
        FuzzCase {
            seed,
            width: rng.random_range(4usize..25),
            height: rng.random_range(4usize..25),
            clutter: rng.random_range(4usize..61),
            scene_seed: rng.random(),
            shader: [
                ShaderKind::PathTrace,
                ShaderKind::AmbientOcclusion,
                ShaderKind::Shadow,
            ][rng.random_range(0usize..3)],
            sm_count: rng.random_range(1usize..4),
            warp_buffer: rng.random_range(1usize..7),
            subwarp: [4usize, 8, 16, 32][rng.random_range(0usize..4)],
            lbu_moves: rng.random_range(1u32..4),
            order: [TraversalOrder::Dfs, TraversalOrder::Bfs][rng.random_range(0usize..2)],
            steal: [StealPosition::Top, StealPosition::Bottom][rng.random_range(0usize..2)],
            mode: [SubwarpMode::AllGroups, SubwarpMode::OneGroup][rng.random_range(0usize..2)],
            line_bytes,
            l1_bytes: l1_lines * line_bytes as u64,
            l1_assoc,
            l1_mshr: rng.random_range(1usize..33),
            l2_bytes: l2_lines * line_bytes as u64,
            l2_assoc,
            l2_mshr: rng.random_range(2usize..129),
            dram_channels: rng.random_range(1usize..9),
        }
    }

    /// The GPU configuration this case describes.
    pub fn gpu_config(&self) -> GpuConfig {
        let mut cfg = GpuConfig::small(self.sm_count)
            .with_warp_buffer(self.warp_buffer)
            .with_subwarp(self.subwarp);
        cfg.lbu_moves_per_cycle = self.lbu_moves;
        cfg.traversal_order = self.order;
        cfg.steal_from = self.steal;
        cfg.subwarp_mode = self.mode;
        cfg.mem.line_bytes = self.line_bytes;
        cfg.mem.l1_bytes = self.l1_bytes;
        cfg.mem.l1_assoc = self.l1_assoc;
        cfg.mem.l1_mshr_entries = self.l1_mshr;
        cfg.mem.l2_bytes = self.l2_bytes;
        cfg.mem.l2_assoc = self.l2_assoc;
        cfg.mem.l2_mshr_entries = self.l2_mshr;
        cfg.mem.dram_channels = self.dram_channels;
        cfg
    }

    /// Builds the case's procedural scene: a ground quad plus
    /// [`FuzzCase::clutter`] scattered triangles.
    pub fn scene(&self) -> Scene {
        let cam = Camera::look_at(
            Vec3::new(0.0, 2.5, 11.0),
            Vec3::ZERO,
            Vec3::Y,
            58.0,
            self.width.max(1) as f32 / self.height.max(1) as f32,
        );
        SceneBuilder::new(format!("fuzz-{:#x}", self.seed), cam)
            .push(
                quad(Vec3::new(-18.0, 0.0, -18.0), Vec3::X * 36.0, Vec3::Z * 36.0),
                Material::Lambertian {
                    albedo: Rgb::splat(0.5),
                },
            )
            .push(
                scatter_clutter(
                    Aabb::new(Vec3::new(-5.0, 0.4, -5.0), Vec3::new(5.0, 4.5, 5.0)),
                    self.clutter,
                    0.2..0.8,
                    self.scene_seed,
                ),
                Material::Lambertian {
                    albedo: Rgb::splat(0.7),
                },
            )
            .build()
    }
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {:#x}: {}x{} {:?}, {} clutter tris, {} SM(s), warp buffer {}, \
             subwarp {} ({:?}, {:?} steal, {:?}, {} move/cycle), L1 {}B/{}-way, \
             L2 {}B/{}-way, {}B lines, MSHR {}/{}, {} DRAM channel(s)",
            self.seed,
            self.width,
            self.height,
            self.shader,
            self.clutter,
            self.sm_count,
            self.warp_buffer,
            self.subwarp,
            self.order,
            self.steal,
            self.mode,
            self.lbu_moves,
            self.l1_bytes,
            self.l1_assoc,
            self.l2_bytes,
            self.l2_assoc,
            self.line_bytes,
            self.l1_mshr,
            self.l2_mshr,
            self.dram_channels,
        )
    }
}

/// Structural-trace lengths: long enough to force evictions, rebases
/// and MSHR saturation under every sampled geometry, short enough that
/// a 64-seed CI budget stays in seconds.
const CACHE_TRACE_LEN: usize = 4_000;
const MSHR_TRACE_LEN: usize = 3_000;
const CALENDAR_TRACE_LEN: usize = 5_000;

/// Runs every differential oracle over `case`; `Ok` when all agree.
pub fn run_case(case: &FuzzCase) -> Result<(), CheckFailure> {
    structural_oracles(case)?;
    let scene = case.scene();
    geometry_oracle(case, &scene)?;
    image_identity_oracle(case, &scene)
}

/// Cache / MSHR / calendar trace replays with case-derived geometry and
/// seeds.
fn structural_oracles(case: &FuzzCase) -> Result<(), CheckFailure> {
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xCAC4E);
    // Address span ~4x the L2 so evictions are frequent at every level.
    let span = 4 * case.l2_bytes;
    let trace: Vec<u64> = (0..CACHE_TRACE_LEN)
        .map(|i| match i % 3 {
            0 => rng.random_range(0..span),
            1 => (i as u64 * case.line_bytes as u64) % span, // streaming
            _ => (i as u64 / 5 * case.line_bytes as u64) % (case.l1_bytes / 2).max(1), // hot loop
        })
        .collect();
    oracle::replay_cache(case.l1_bytes, case.l1_assoc, case.line_bytes, &trace)?;
    oracle::replay_cache(case.l2_bytes, case.l2_assoc, case.line_bytes, &trace)?;

    let mut now = 0u64;
    // Line universe ~2x the MSHR capacity: saturation and eviction are
    // routine, merges frequent.
    let lines = (2 * case.l1_mshr).max(4) as u64;
    let ops: Vec<MshrOp> = (0..MSHR_TRACE_LEN)
        .map(|_| {
            now += rng.random_range(0u64..6);
            let line = rng.random_range(0..lines);
            if rng.random_range(0u32..3) == 0 {
                MshrOp::Insert {
                    line,
                    done: now + rng.random_range(1u64..500),
                    now,
                }
            } else {
                MshrOp::Lookup { line, now }
            }
        })
        .collect();
    oracle::replay_mshr(case.l1_mshr, &ops)?;
    oracle::replay_mshr(case.l2_mshr, &ops)?;

    let mut now = 0u64;
    let ops: Vec<CalendarOp> = (0..CALENDAR_TRACE_LEN)
        .map(|_| {
            now += rng.random_range(0u64..40);
            if rng.random_range(0u32..3) == 0 {
                CalendarOp::PopReady { now }
            } else {
                // Latencies from L1-hit scale to saturated-DRAM backlog:
                // exercises both the near wheel and far-level cascades.
                CalendarOp::Push {
                    cycle: now + rng.random_range(1u64..4_000),
                    payload: rng.random(),
                }
            }
        })
        .collect();
    oracle::replay_calendar(&ops)
}

/// BVH-vs-brute-force over a camera ray grid plus random box-crossing
/// rays.
fn geometry_oracle(case: &FuzzCase, scene: &Scene) -> Result<(), CheckFailure> {
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0xB44);
    let mut rays = Vec::with_capacity(96);
    for i in 0..8 {
        for j in 0..8 {
            rays.push(
                scene
                    .camera
                    .primary_ray((i as f32 + 0.5) / 8.0, (j as f32 + 0.5) / 8.0),
            );
        }
    }
    for _ in 0..32 {
        let orig = Vec3::new(
            rng.random_range(-12.0f32..12.0),
            rng.random_range(0.1f32..8.0),
            rng.random_range(-12.0f32..12.0),
        );
        let target = Vec3::new(
            rng.random_range(-5.0f32..5.0),
            rng.random_range(0.0f32..4.0),
            rng.random_range(-5.0f32..5.0),
        );
        rays.push(Ray::new(orig, (target - orig).normalized()));
    }
    oracle::bvh_vs_brute_force(&scene.image, &rays)
}

/// Baseline-vs-CoopRT bitwise image identity, with the engine invariant
/// checker enabled on both runs.
fn image_identity_oracle(case: &FuzzCase, scene: &Scene) -> Result<(), CheckFailure> {
    let cfg = case.gpu_config();
    let mut frames = Vec::new();
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        let checker = Checker::enabled();
        let frame = Simulation::new(scene, &cfg, policy)
            .with_checker(checker.clone())
            .run_frame(case.shader, case.width, case.height)
            .map_err(|e| CheckFailure::new("engine", format!("{policy:?}: {e}")))?;
        if checker.checks_run() == 0 {
            return Err(CheckFailure::new(
                "invariants",
                format!("{policy:?}: enabled checker evaluated no invariants"),
            ));
        }
        let violations = checker.violations();
        if !violations.is_empty() {
            return Err(CheckFailure::new(
                "invariants",
                format!("{policy:?}: {}", violations.join("; ")),
            ));
        }
        frames.push(frame);
    }
    let (base, coop) = (&frames[0], &frames[1]);
    for (i, (a, b)) in base.image.iter().zip(coop.image.iter()).enumerate() {
        let bits = |c: &Rgb| [c.r.to_bits(), c.g.to_bits(), c.b.to_bits()];
        if bits(a) != bits(b) {
            return Err(CheckFailure::new(
                "image",
                format!(
                    "pixel {i} ({}, {}) differs between policies: baseline {a:?}, cooprt {b:?}",
                    i % case.width,
                    i / case.width
                ),
            ));
        }
    }
    Ok(())
}

/// A fuzz failure: the seed, the original divergence, and the shrunk
/// reproduction.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Seed whose case failed.
    pub seed: u64,
    /// Divergence reported by the original (unshrunk) case.
    pub original: CheckFailure,
    /// The minimized case that still fails.
    pub minimized: FuzzCase,
    /// Divergence reported by the minimized case.
    pub minimized_failure: CheckFailure,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed {:#x} ({}) FAILED: {}",
            self.seed, self.seed, self.original
        )?;
        writeln!(f, "minimized repro: {}", self.minimized)?;
        writeln!(f, "minimized failure: {}", self.minimized_failure)?;
        write!(
            f,
            "replay with: cargo run --release --example simcheck -- --seed {}",
            self.seed
        )
    }
}

/// Runs one seed end to end; on divergence the case is shrunk before
/// reporting.
pub fn run_seed(seed: u64) -> Result<(), Box<Failure>> {
    let case = FuzzCase::from_seed(seed);
    match run_case(&case) {
        Ok(()) => Ok(()),
        Err(original) => {
            let (minimized, minimized_failure) = shrink::shrink(&case, run_case);
            Err(Box::new(Failure {
                seed,
                original,
                minimized,
                minimized_failure,
            }))
        }
    }
}

/// Runs `count` consecutive seeds starting at `start`; stops at the
/// first failure. Returns the number of seeds that passed.
pub fn run_budget(start: u64, count: u64) -> Result<u64, Box<Failure>> {
    for i in 0..count {
        run_seed(start + i)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic_and_seed_sensitive() {
        assert_eq!(FuzzCase::from_seed(7), FuzzCase::from_seed(7));
        assert_ne!(FuzzCase::from_seed(7), FuzzCase::from_seed(8));
    }

    #[test]
    fn sampled_geometry_is_always_constructible() {
        // Every sampled case must satisfy the constructors' asserts
        // (cache associativity vs line count, non-zero MSHRs, subwarp
        // whitelist) — build all the pieces for a spread of seeds.
        for seed in 0..200u64 {
            let case = FuzzCase::from_seed(seed);
            let cfg = case.gpu_config();
            assert!(cfg.mem.l1_bytes >= cfg.mem.line_bytes as u64);
            let _ = cooprt_gpu::Cache::new(case.l1_bytes, case.l1_assoc, case.line_bytes);
            let _ = cooprt_gpu::Cache::new(case.l2_bytes, case.l2_assoc, case.line_bytes);
            let _ = cooprt_gpu::Mshr::new(case.l1_mshr);
        }
    }

    #[test]
    fn a_handful_of_seeds_pass_every_oracle() {
        // The CI budget runs 64+ seeds in release; keep the in-crate
        // smoke cheap.
        if let Err(failure) = run_budget(0, 4) {
            panic!("{failure}");
        }
    }

    #[test]
    fn scene_reflects_the_clutter_knob() {
        let mut case = FuzzCase::from_seed(3);
        case.clutter = 10;
        let small = case.scene().triangle_count();
        case.clutter = 40;
        let big = case.scene().triangle_count();
        assert!(big > small);
    }
}
