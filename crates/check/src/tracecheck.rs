//! Trace record/replay differential oracle.
//!
//! The trace subsystem (`cooprt_core::trace`) claims three identities,
//! and this module fuzzes all of them from a [`FuzzCase`]:
//!
//! 1. **Recording is observational** — running a frame with the
//!    recorder enabled reports bitwise the same cycle count and image as
//!    the plain live run;
//! 2. **The codec is lossless** — the recorded trace survives an
//!    encode → decode round trip;
//! 3. **Replay is the timing model** — replaying the decoded trace
//!    under *both* traversal policies reproduces the live runs' cycle
//!    counts and images bitwise, even though replay never re-executes
//!    raygen or shading.
//!
//! Because the per-thread ray streams depend only on functional hits,
//! one trace recorded under the baseline policy must replay every
//! sampled timing configuration — warp buffers, subwarps, cache
//! geometry, MSHRs, DRAM channels — exactly. Any divergence means a
//! replay-visible piece of state leaked out of the trace.
//!
//! Failing cases shrink through the same [`shrink`](crate::shrink)
//! pipeline as the simulator oracles and report a
//! `simcheck -- --trace-seed N` replay command.

use crate::fuzz::FuzzCase;
use crate::{shrink, CheckFailure};
use cooprt_core::{FrameResult, Simulation, Trace, TraversalPolicy};
use cooprt_math::Rgb;
use std::fmt;

/// Fuzz scenes have no meaningful `SceneId` detail level; the header
/// still records one so replays can label themselves.
const FUZZ_DETAIL: u32 = 1;

fn bits(c: &Rgb) -> [u32; 3] {
    [c.r.to_bits(), c.g.to_bits(), c.b.to_bits()]
}

/// Compares a replayed frame against its live twin: bitwise cycle and
/// image identity.
fn expect_identical(
    what: &str,
    policy: TraversalPolicy,
    live: &FrameResult,
    replayed: &FrameResult,
) -> Result<(), CheckFailure> {
    if replayed.cycles != live.cycles {
        return Err(CheckFailure::new(
            "trace-replay",
            format!(
                "{what} under {policy:?}: {} cycles, live simulation took {}",
                replayed.cycles, live.cycles
            ),
        ));
    }
    for (i, (a, b)) in live.image.iter().zip(replayed.image.iter()).enumerate() {
        if bits(a) != bits(b) {
            return Err(CheckFailure::new(
                "trace-replay",
                format!("{what} under {policy:?}: pixel {i} differs (live {a:?}, replayed {b:?})"),
            ));
        }
    }
    Ok(())
}

/// Runs the record → encode → decode → replay differential over one
/// case; `Ok` when every identity holds.
pub fn run_trace_case(case: &FuzzCase) -> Result<(), CheckFailure> {
    let scene = case.scene();
    let cfg = case.gpu_config();
    let run_live = |policy: TraversalPolicy| -> Result<FrameResult, CheckFailure> {
        Simulation::new(&scene, &cfg, policy)
            .run_frame(case.shader, case.width, case.height)
            .map_err(|e| CheckFailure::new("engine", format!("live {policy:?}: {e}")))
    };

    // Identity 1: the recorder perturbs nothing.
    let live_base = run_live(TraversalPolicy::Baseline)?;
    let (recorded, trace) = Trace::record(
        &scene,
        FUZZ_DETAIL,
        &cfg,
        TraversalPolicy::Baseline,
        case.shader,
        case.width,
        case.height,
    )
    .map_err(|e| CheckFailure::new("engine", format!("recording run: {e}")))?;
    expect_identical(
        "recording run",
        TraversalPolicy::Baseline,
        &live_base,
        &recorded,
    )?;

    // Identity 2: the codec is lossless.
    let bytes = trace.encode();
    let decoded = Trace::decode(&bytes)
        .map_err(|e| CheckFailure::new("trace-replay", format!("decode failed: {e}")))?;
    if decoded.total_records() != trace.total_records() {
        return Err(CheckFailure::new(
            "trace-replay",
            format!(
                "round trip changed the record count: {} recorded, {} decoded",
                trace.total_records(),
                decoded.total_records()
            ),
        ));
    }

    // Identity 3: the decoded trace replays the timing model bitwise —
    // under the recorded policy and across the policy switch.
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        let live_coop;
        let live = match policy {
            TraversalPolicy::Baseline => &live_base,
            TraversalPolicy::CoopRt => {
                live_coop = run_live(policy)?;
                &live_coop
            }
        };
        let replayed = decoded
            .replay(&cfg, policy)
            .map_err(|e| CheckFailure::new("trace-replay", format!("replay {policy:?}: {e}")))?;
        expect_identical("replay", policy, live, &replayed)?;
    }
    Ok(())
}

/// A trace-replay fuzz failure: the seed, the original divergence, and
/// the shrunk reproduction.
#[derive(Clone, Debug)]
pub struct TraceFailure {
    /// Seed whose case failed.
    pub seed: u64,
    /// Divergence reported by the original (unshrunk) case.
    pub original: CheckFailure,
    /// The minimized case that still fails.
    pub minimized: FuzzCase,
    /// Divergence reported by the minimized case.
    pub minimized_failure: CheckFailure,
}

impl fmt::Display for TraceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace seed {:#x} ({}) FAILED: {}",
            self.seed, self.seed, self.original
        )?;
        writeln!(f, "minimized repro: {}", self.minimized)?;
        writeln!(f, "minimized failure: {}", self.minimized_failure)?;
        write!(
            f,
            "replay with: cargo run --release --example simcheck -- --trace-seed {}",
            self.seed
        )
    }
}

/// Runs one seed through the record/replay differential; on divergence
/// the case is shrunk before reporting.
pub fn run_trace_seed(seed: u64) -> Result<(), Box<TraceFailure>> {
    let case = FuzzCase::from_seed(seed);
    match run_trace_case(&case) {
        Ok(()) => Ok(()),
        Err(original) => {
            let (minimized, minimized_failure) = shrink::shrink(&case, run_trace_case);
            Err(Box::new(TraceFailure {
                seed,
                original,
                minimized,
                minimized_failure,
            }))
        }
    }
}

/// Runs `count` consecutive trace seeds starting at `start`; stops at
/// the first failure. Returns the number of seeds that passed.
pub fn run_trace_budget(start: u64, count: u64) -> Result<u64, Box<TraceFailure>> {
    for i in 0..count {
        run_trace_seed(start + i)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cooprt_core::ShaderKind;

    #[test]
    fn a_handful_of_trace_seeds_pass() {
        // CI runs a larger budget in release; keep the in-crate smoke
        // cheap (each seed runs five frames).
        if let Err(failure) = run_trace_budget(0, 3) {
            panic!("{failure}");
        }
    }

    #[test]
    fn every_shader_kind_is_reachable_and_passes() {
        // The differential must hold for all three recorded shader
        // kinds; scan seeds until each has been exercised once.
        let mut seen = [false; 3];
        let mut seed = 0u64;
        while seen.iter().any(|s| !s) {
            let case = FuzzCase::from_seed(seed);
            let slot = match case.shader {
                ShaderKind::PathTrace => 0,
                ShaderKind::AmbientOcclusion => 1,
                ShaderKind::Shadow => 2,
                ShaderKind::Knn | ShaderKind::Radius | ShaderKind::Contain => {
                    unreachable!("render-trace fuzzing never samples query kinds")
                }
            };
            if !seen[slot] {
                seen[slot] = true;
                if let Err(f) = run_trace_case(&case) {
                    panic!("seed {seed} ({:?}): {f}", case.shader);
                }
            }
            seed += 1;
            assert!(seed < 64, "shader kinds should all appear in 64 seeds");
        }
    }
}
