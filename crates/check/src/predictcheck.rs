//! Speculative-predictor differential oracle.
//!
//! Both predictors in `cooprt_core::predictor` are speculation that must
//! never change what a ray computes, and this module fuzzes that claim
//! from a [`FuzzCase`]:
//!
//! 1. **Prediction is timing-only** — a frame run with the intersection
//!    predictor, the ray-path predictor, or both renders bitwise the
//!    same image as the speculation-free run, under both traversal
//!    policies. The intersection predictor verifies every candidate
//!    with a real intersection test; the ray-path predictor's
//!    go-up-level fallback walks a missed entry subtree back to the
//!    root, so any-hit occlusion answers are exact.
//! 2. **Counters are honest** — the stats families obey their
//!    containment order (candidates ⊆ lookups, verified ⊆ candidates,
//!    entry hits ⊆ path candidates), so MetricsReport ratios can be
//!    trusted. This is the regression guard for the historical
//!    stale-candidate overcount.
//!
//! Failing cases shrink through the same [`shrink`](crate::shrink)
//! pipeline as the simulator oracles and report a
//! `simcheck -- --predict-seed N` replay command.

use crate::fuzz::FuzzCase;
use crate::{shrink, CheckFailure};
use cooprt_core::{PredictPolicy, ShaderKind, Simulation, TraversalPolicy};
use cooprt_math::Rgb;
use std::fmt;

fn bits(c: &Rgb) -> [u32; 3] {
    [c.r.to_bits(), c.g.to_bits(), c.b.to_bits()]
}

/// The three speculative configurations checked against the reference.
const VARIANTS: [(&str, bool, PredictPolicy); 3] = [
    ("intersection", true, PredictPolicy::Off),
    ("ray-path", false, PredictPolicy::RayPath),
    ("both", true, PredictPolicy::RayPath),
];

fn compare(
    case: &FuzzCase,
    scene: &cooprt_scenes::Scene,
    policy: TraversalPolicy,
    shader: ShaderKind,
) -> Result<(), CheckFailure> {
    let plain = case.gpu_config();
    let reference = Simulation::new(scene, &plain, policy)
        .run_frame(shader, case.width, case.height)
        .map_err(|e| CheckFailure::new("engine", format!("plain {policy:?}: {e}")))?;
    for (label, intersection, predict) in VARIANTS {
        let mut cfg = case.gpu_config().with_predict(predict);
        cfg.intersection_predictor = intersection;
        let run = Simulation::new(scene, &cfg, policy)
            .run_frame(shader, case.width, case.height)
            .map_err(|e| CheckFailure::new("engine", format!("{label} {policy:?}: {e}")))?;
        for (i, (a, b)) in reference.image.iter().zip(run.image.iter()).enumerate() {
            if bits(a) != bits(b) {
                return Err(CheckFailure::new(
                    "predict-image",
                    format!(
                        "{label} predictor under {policy:?} ({shader:?}): \
                         pixel {i} differs (plain {a:?}, speculative {b:?})"
                    ),
                ));
            }
        }
        if run.rays != reference.rays {
            return Err(CheckFailure::new(
                "predict-image",
                format!(
                    "{label} predictor under {policy:?} ({shader:?}): \
                     {} rays traced, plain traced {}",
                    run.rays, reference.rays
                ),
            ));
        }
        let p = &run.predictor;
        let honest = p.candidates <= p.lookups
            && p.stale <= p.lookups
            && p.verified <= p.candidates
            && p.path_candidates <= p.path_lookups
            && p.path_stale <= p.path_lookups
            && p.path_entry_hits <= p.path_candidates;
        if !honest {
            return Err(CheckFailure::new(
                "predict-stats",
                format!("{label} predictor under {policy:?}: dishonest counters {p:?}"),
            ));
        }
    }
    Ok(())
}

/// Runs the predictor differential over one case; `Ok` when every
/// speculative variant renders the reference image with honest stats.
pub fn run_predict_case(case: &FuzzCase) -> Result<(), CheckFailure> {
    let scene = case.scene();
    for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
        compare(case, &scene, policy, case.shader)?;
    }
    // The ray-path table only steers any-hit traversals; make sure every
    // seed exercises that path even when the case sampled PathTrace.
    if case.shader == ShaderKind::PathTrace {
        compare(
            case,
            &scene,
            TraversalPolicy::Baseline,
            ShaderKind::AmbientOcclusion,
        )?;
    }
    Ok(())
}

/// A predictor fuzz failure: the seed, the original divergence, and the
/// shrunk reproduction.
#[derive(Clone, Debug)]
pub struct PredictFailure {
    /// Seed whose case failed.
    pub seed: u64,
    /// Divergence reported by the original (unshrunk) case.
    pub original: CheckFailure,
    /// The minimized case that still fails.
    pub minimized: FuzzCase,
    /// Divergence reported by the minimized case.
    pub minimized_failure: CheckFailure,
}

impl fmt::Display for PredictFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "predict seed {:#x} ({}) FAILED: {}",
            self.seed, self.seed, self.original
        )?;
        writeln!(f, "minimized repro: {}", self.minimized)?;
        writeln!(f, "minimized failure: {}", self.minimized_failure)?;
        write!(
            f,
            "replay with: cargo run --release --example simcheck -- --predict-seed {}",
            self.seed
        )
    }
}

/// Runs one seed through the predictor differential; on divergence the
/// case is shrunk before reporting.
pub fn run_predict_seed(seed: u64) -> Result<(), Box<PredictFailure>> {
    let case = FuzzCase::from_seed(seed);
    match run_predict_case(&case) {
        Ok(()) => Ok(()),
        Err(original) => {
            let (minimized, minimized_failure) = shrink::shrink(&case, run_predict_case);
            Err(Box::new(PredictFailure {
                seed,
                original,
                minimized,
                minimized_failure,
            }))
        }
    }
}

/// Runs `count` consecutive predictor seeds starting at `start`; stops
/// at the first failure. Returns the number of seeds that passed.
pub fn run_predict_budget(start: u64, count: u64) -> Result<u64, Box<PredictFailure>> {
    for i in 0..count {
        run_predict_seed(start + i)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_predict_seeds_pass() {
        // CI runs a larger budget in release; keep the in-crate smoke
        // cheap (each seed runs eight-to-ten tiny frames).
        if let Err(failure) = run_predict_budget(0, 2) {
            panic!("{failure}");
        }
    }
}
