//! Spatial-query differential oracle.
//!
//! `cooprt-query` claims its RT-unit query answers are **exact**: kNN,
//! fixed-radius search and point-in-cell containment computed through
//! the timing model (gather traversal, LBU work-stealing, warp
//! scheduling) must equal a brute-force scan of the raw point set or
//! cell grid, bit for bit. This module fuzzes that claim from a
//! [`FuzzCase`]:
//!
//! 1. **Engine == oracle** — every query kind the sampled domain
//!    supports is run under both traversal policies and compared to
//!    [`cooprt_query::oracle_answers`] (same query points, same `f32`
//!    filters, no BVH).
//! 2. **Policy invariance** — follows from (1): baseline and CoopRT
//!    both equal the oracle, so LBU stealing provably never leaks a
//!    candidate to the wrong query or drops one.
//!
//! The query scene is derived from the case's `scene_seed`/`clutter`
//! fields (a point cloud of one of three shapes, or an AMR cell grid),
//! so [`shrink`](crate::shrink) minimizes point counts and batch sizes
//! through the existing pipeline. Failing seeds report a
//! `simcheck -- --query-seed N` replay command.

use crate::fuzz::FuzzCase;
use crate::{shrink, CheckFailure};
use cooprt_core::{ShaderKind, TraversalPolicy};
use cooprt_math::{Aabb, Rgb, Vec3};
use cooprt_query::{oracle_answers, run_queries};
use cooprt_scenes::{
    amr_cells, cell_tris, clustered_points, point_cloud_tris, surface_points, uniform_points,
    Camera, Material, QueryDomain, Scene, SceneBuilder,
};
use std::fmt;

/// Builds the query scene a case describes: `scene_seed` picks one of
/// four domain shapes (uniform / clustered / surface point clouds, or
/// an AMR cell grid) and `clutter` scales the point / cell count, so
/// shrinking a failing case shrinks its domain.
pub fn query_scene(case: &FuzzCase) -> Scene {
    let seed = case.scene_seed;
    let n = case.clutter.max(4);
    let cam = Camera::look_at(Vec3::new(14.0, 12.0, 14.0), Vec3::ZERO, Vec3::Y, 45.0, 1.0);
    let name = format!("queryfuzz-{:#x}", case.seed);
    let region = Aabb::new(Vec3::splat(-7.0), Vec3::splat(7.0));
    let mat = Material::Lambertian {
        albedo: Rgb::splat(0.6),
    };
    match seed % 4 {
        0 => {
            let pts = uniform_points(region, n, seed);
            SceneBuilder::new(name, cam)
                .push(point_cloud_tris(&pts, 1.5), mat)
                .query(QueryDomain::points(pts, 1.5, 4, 0))
                .build()
        }
        1 => {
            let pts = clustered_points(region, n, 3, 1.0, seed);
            SceneBuilder::new(name, cam)
                .push(point_cloud_tris(&pts, 1.2), mat)
                .query(QueryDomain::points(pts, 1.2, 4, 0))
                .build()
        }
        2 => {
            let pts = surface_points(Vec3::ZERO, 5.0, n, seed);
            SceneBuilder::new(name, cam)
                .push(point_cloud_tris(&pts, 0.9), mat)
                .query(QueryDomain::points(pts, 0.9, 4, 0))
                .build()
        }
        _ => {
            // Cell grids come in even resolutions; clutter scales the
            // refinement between 2^3 and 6^3 (+ fine octant).
            let g = (2 + 2 * (n / 24)).min(6);
            let cells = amr_cells(region, g);
            SceneBuilder::new(name, cam)
                .push(cell_tris(&cells), mat)
                .query(QueryDomain::cells(cells, 0))
                .build()
        }
    }
}

/// Runs the query differential over one case; `Ok` when every supported
/// query kind matches the brute-force oracle under both policies.
pub fn run_query_case(case: &FuzzCase) -> Result<(), CheckFailure> {
    let scene = query_scene(case);
    let domain = scene.query.as_ref().expect("query scenes carry a domain");
    let kinds: &[ShaderKind] = if domain.is_cells() {
        &[ShaderKind::Contain]
    } else {
        &[ShaderKind::Knn, ShaderKind::Radius]
    };
    let cfg = case.gpu_config();
    let count = (case.width * case.height).max(1);
    for &kind in kinds {
        let want = oracle_answers(&scene, kind, count, case.seed);
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let run = run_queries(&scene, &cfg, policy, kind, count, case.seed)
                .map_err(|e| CheckFailure::new("engine", format!("{kind:?} {policy:?}: {e}")))?;
            if run.answers.len() != want.len() {
                return Err(CheckFailure::new(
                    "query-exact",
                    format!(
                        "{kind:?} under {policy:?}: {} answers for {} queries",
                        run.answers.len(),
                        want.len()
                    ),
                ));
            }
            for (i, (got, oracle)) in run.answers.iter().zip(want.iter()).enumerate() {
                if got != oracle {
                    return Err(CheckFailure::new(
                        "query-exact",
                        format!(
                            "{kind:?} under {policy:?}: query {i} answered {got:?}, \
                             brute force says {oracle:?}"
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// A query fuzz failure: the seed, the original divergence, and the
/// shrunk reproduction.
#[derive(Clone, Debug)]
pub struct QueryFailure {
    /// Seed whose case failed.
    pub seed: u64,
    /// Divergence reported by the original (unshrunk) case.
    pub original: CheckFailure,
    /// The minimized case that still fails.
    pub minimized: FuzzCase,
    /// Divergence reported by the minimized case.
    pub minimized_failure: CheckFailure,
}

impl fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "query seed {:#x} ({}) FAILED: {}",
            self.seed, self.seed, self.original
        )?;
        writeln!(f, "minimized repro: {}", self.minimized)?;
        writeln!(f, "minimized failure: {}", self.minimized_failure)?;
        write!(
            f,
            "replay with: cargo run --release --example simcheck -- --query-seed {}",
            self.seed
        )
    }
}

/// Runs one seed through the query differential; on divergence the case
/// is shrunk before reporting.
pub fn run_query_seed(seed: u64) -> Result<(), Box<QueryFailure>> {
    let case = FuzzCase::from_seed(seed);
    match run_query_case(&case) {
        Ok(()) => Ok(()),
        Err(original) => {
            let (minimized, minimized_failure) = shrink::shrink(&case, run_query_case);
            Err(Box::new(QueryFailure {
                seed,
                original,
                minimized,
                minimized_failure,
            }))
        }
    }
}

/// Runs `count` consecutive query seeds starting at `start`; stops at
/// the first failure. Returns the number of seeds that passed.
pub fn run_query_budget(start: u64, count: u64) -> Result<u64, Box<QueryFailure>> {
    for i in 0..count {
        run_query_seed(start + i)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_query_seeds_pass() {
        // CI runs a larger budget in release; keep the in-crate smoke
        // cheap (each seed runs four-to-eight small query batches).
        if let Err(failure) = run_query_budget(0, 2) {
            panic!("{failure}");
        }
    }

    #[test]
    fn all_four_domain_shapes_are_reachable() {
        let mut seen = [false; 4];
        let mut seed = 0u64;
        while seen.iter().any(|s| !s) {
            let case = FuzzCase::from_seed(seed);
            seen[(case.scene_seed % 4) as usize] = true;
            seed += 1;
            assert!(seed < 64, "domain shapes should all appear in 64 seeds");
        }
    }
}
