//! Differential fuzzing and invariant harness for the CoopRT simulator.
//!
//! The simulator's correctness rests on a few strong claims: CoopRT
//! reorders traversal but never changes the rendered image; the BVH
//! finds exactly the hits brute force finds; and the flat host-side
//! representations of the memory hierarchy (way-array caches, slotted
//! MSHRs, the bucketed event calendar) behave bitwise identically to
//! the naive map/heap models they replaced. This crate turns each claim
//! into a *differential oracle* and fuzzes all of them from explicit
//! 64-bit seeds:
//!
//! - [`oracle`] holds the reference models (promoted from inline test
//!   oracles) and the trace-replay comparators;
//! - [`fuzz`] samples simulator configurations and procedural scenes
//!   from a seed and drives every oracle over them, with the engine's
//!   invariant [`Checker`](cooprt_core::Checker) enabled;
//! - [`shrink`] minimizes a failing case (halve the resolution, drop
//!   triangles, shrink warps) before reporting, and every report carries
//!   the seed plus the `examples/simcheck.rs --seed N` replay command;
//! - [`jsonfuzz`] hammers the in-tree JSON parser (round-trip, byte
//!   mutation, adversarial corpus) — it sits on the service's
//!   untrusted-input path and must fail cleanly, never panic;
//! - [`servecache`] fuzzes the `cooprt-serve` result-cache identity
//!   guarantee: a cache hit must be bitwise identical to a fresh run of
//!   the same `(scene, config, policy, spp)` job;
//! - [`tracecheck`] fuzzes the record/replay subsystem: recording must
//!   perturb nothing, the trace codec must round-trip losslessly, and
//!   replaying the decoded trace must reproduce live cycle counts and
//!   images bitwise under both traversal policies;
//! - [`reordercheck`] fuzzes the ray-reordering front end: every
//!   reorder policy must render the unordered image bitwise (both
//!   traversal policies, compaction on and off), and sort keys must be
//!   bitwise reproducible at any outer-parallelism width;
//! - [`predictcheck`] fuzzes the speculative predictors: intersection
//!   and ray-path prediction (alone and stacked) must render the
//!   speculation-free image bitwise under both traversal policies, and
//!   their stats counters must obey their containment order;
//! - [`querycheck`] fuzzes the spatial-query subsystem: kNN, radius
//!   search and point-in-cell containment answered through the timing
//!   model must equal a brute-force scan of the raw domain exactly,
//!   under both traversal policies.
//!
//! Everything is deterministic and dependency-free (the in-tree PRNG
//! only), so a CI budget of seeds means the same thing on every
//! machine.
//!
//! # Examples
//!
//! ```
//! use cooprt_check::fuzz;
//!
//! // Replay one seed through every oracle.
//! fuzz::run_seed(0).expect("seed 0 is part of the CI budget and passes");
//! ```

pub mod fuzz;
pub mod jsonfuzz;
pub mod oracle;
pub mod predictcheck;
pub mod querycheck;
pub mod reordercheck;
pub mod servecache;
pub mod shrink;
pub mod tracecheck;

pub use fuzz::{run_budget, run_case, run_seed, Failure, FuzzCase};
pub use jsonfuzz::{run_json_budget, run_json_seed};
pub use predictcheck::{run_predict_budget, run_predict_case, run_predict_seed, PredictFailure};
pub use querycheck::{run_query_budget, run_query_case, run_query_seed, QueryFailure};
pub use reordercheck::{run_reorder_budget, run_reorder_case, run_reorder_seed, ReorderFailure};
pub use servecache::{run_serve_budget, run_serve_seed};
pub use tracecheck::{run_trace_budget, run_trace_case, run_trace_seed, TraceFailure};

use std::fmt;

/// A divergence reported by one oracle.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Which oracle diverged (`"cache"`, `"mshr"`, `"calendar"`,
    /// `"bvh"`, `"image"`, `"invariants"`, `"engine"`,
    /// `"json-roundtrip"`, `"json-mutation"`, `"json-adversarial"`,
    /// `"serve-cache"`, `"trace-replay"`, `"reorder-image"`,
    /// `"reorder-determinism"`).
    pub oracle: String,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

impl CheckFailure {
    /// Builds a failure for `oracle` with the given detail.
    pub fn new(oracle: impl Into<String>, detail: impl Into<String>) -> Self {
        CheckFailure {
            oracle: oracle.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} oracle: {}", self.oracle, self.detail)
    }
}

impl std::error::Error for CheckFailure {}
