//! Reference models and differential replays.
//!
//! Each hot-path engine structure (flat [`Cache`], slotted [`Mshr`],
//! bucketed [`EventCalendar`]) has a deliberately naive counterpart here
//! — maps, hash tables and a binary heap — kept as the semantic source
//! of truth. The replay functions drive both implementations through
//! the same operation trace and fail on the first divergence, which is
//! exactly the oracle the structures' own unit tests used inline; this
//! module promotes those models so the fuzzer (and anyone debugging a
//! suspected cache/calendar bug) can replay arbitrary traces against
//! them.
//!
//! The geometric oracle is [`bvh_vs_brute_force`]: the BVH reference
//! traversal must find the same closest hit as a linear scan over the
//! triangle soup.

use crate::CheckFailure;
use cooprt_bvh::{traverse, BvhImage};
use cooprt_gpu::{Cache, EventCalendar, Mshr};
use cooprt_math::Ray;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// The map-based LRU cache the flat way-array [`Cache`] replaced. Same
/// modelled behaviour (true LRU over unique stamps), naive host
/// representation.
pub struct MapCache {
    sets: Vec<MapCacheSet>,
    set_count: u64,
    capacity_per_set: usize,
    line_bytes: u32,
    stamp: u64,
}

#[derive(Clone, Default)]
struct MapCacheSet {
    /// tag → last-use stamp.
    lines: HashMap<u64, u64>,
    /// last-use stamp → tag (stamps are unique, so this orders the set
    /// by recency; the first entry is the LRU victim).
    order: BTreeMap<u64, u64>,
}

impl MapCacheSet {
    fn touch(&mut self, tag: u64, stamp: u64, capacity: usize) -> bool {
        if let Some(old) = self.lines.insert(tag, stamp) {
            self.order.remove(&old);
            self.order.insert(stamp, tag);
            return true;
        }
        self.order.insert(stamp, tag);
        if self.lines.len() > capacity {
            let (&oldest, &victim) = self.order.iter().next().expect("set not empty");
            self.order.remove(&oldest);
            self.lines.remove(&victim);
        }
        false
    }
}

impl MapCache {
    /// Mirrors [`Cache::new`]: `assoc == 0` means fully associative.
    pub fn new(total_bytes: u64, assoc: u32, line_bytes: u32) -> Self {
        let total_lines = (total_bytes / line_bytes as u64) as usize;
        let (set_count, capacity_per_set) = if assoc == 0 {
            (1, total_lines)
        } else {
            (total_lines / assoc as usize, assoc as usize)
        };
        MapCache {
            sets: vec![MapCacheSet::default(); set_count],
            set_count: set_count as u64,
            capacity_per_set,
            line_bytes,
            stamp: 0,
        }
    }

    /// Mirrors [`Cache::access_line`]: `true` on hit, fills on miss.
    pub fn access_line(&mut self, line_addr: u64) -> bool {
        let line = line_addr / self.line_bytes as u64;
        let set = (line % self.set_count) as usize;
        let tag = line / self.set_count;
        self.stamp += 1;
        self.sets[set].touch(tag, self.stamp, self.capacity_per_set)
    }
}

/// The hash-map MSHR the slotted table replaced: line → completion
/// cycle, with lazy expiry and the same capacity policy (reclaim
/// completed fills first, then drop the earliest-completing entry with
/// the line index breaking ties).
pub struct MapMshr {
    fills: HashMap<u64, u64>,
    capacity: usize,
}

impl MapMshr {
    /// Mirrors [`Mshr::new`].
    pub fn new(capacity: usize) -> Self {
        MapMshr {
            fills: HashMap::new(),
            capacity,
        }
    }

    /// Mirrors [`Mshr::lookup`]: `Some(done)` when a fill for `line` is
    /// still in flight at `now`; expired entries evict lazily.
    pub fn lookup(&mut self, line: u64, now: u64) -> Option<u64> {
        match self.fills.get(&line) {
            Some(&done) if done > now => Some(done),
            Some(_) => {
                self.fills.remove(&line);
                None
            }
            None => None,
        }
    }

    /// Mirrors [`Mshr::insert`], including insert-overwrite semantics
    /// for an already-tracked line — and, like the slotted table, the
    /// reclaim/evict pass runs whenever the table is full, *even when*
    /// `line` is already tracked (the hardware frees a slot before it
    /// knows the fill merges).
    pub fn insert(&mut self, line: u64, done: u64, now: u64) {
        if self.fills.len() >= self.capacity {
            self.fills.retain(|_, &mut d| d > now);
        }
        if self.fills.len() >= self.capacity {
            let victim = self
                .fills
                .iter()
                .map(|(&l, &d)| (d, l))
                .min()
                .expect("full table has entries")
                .1;
            self.fills.remove(&victim);
        }
        self.fills.insert(line, done);
    }
}

/// The `BinaryHeap<(cycle, seq, payload)>` priority queue the bucketed
/// [`EventCalendar`] replaced: the explicit sequence number provides the
/// FIFO order among same-cycle events that the calendar gets from
/// bucket order.
#[derive(Default)]
pub struct HeapCalendar {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
}

impl HeapCalendar {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors [`EventCalendar::push`].
    pub fn push(&mut self, cycle: u64, payload: u64) {
        self.heap.push(Reverse((cycle, self.seq, payload)));
        self.seq += 1;
    }

    /// Mirrors [`EventCalendar::peek_min`].
    pub fn peek_min(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }

    /// Mirrors [`EventCalendar::pop_ready`].
    pub fn pop_ready(&mut self, now: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(&Reverse((t, _, _))) if t <= now => {
                let Reverse((t, _, p)) = self.heap.pop().expect("peeked");
                Some((t, p))
            }
            _ => None,
        }
    }

    /// Queued event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One operation of an MSHR trace.
#[derive(Clone, Copy, Debug)]
pub enum MshrOp {
    /// [`Mshr::lookup`] of `line` at cycle `now`.
    Lookup {
        /// Line index probed.
        line: u64,
        /// Probe cycle.
        now: u64,
    },
    /// [`Mshr::insert`] of a fill for `line` completing at `done`.
    Insert {
        /// Line index filled.
        line: u64,
        /// Completion cycle.
        done: u64,
        /// Insertion cycle.
        now: u64,
    },
}

/// One operation of a calendar trace.
#[derive(Clone, Copy, Debug)]
pub enum CalendarOp {
    /// [`EventCalendar::push`] of `payload` at `cycle`.
    Push {
        /// Due cycle.
        cycle: u64,
        /// Opaque payload (compared verbatim).
        payload: u64,
    },
    /// [`EventCalendar::pop_ready`] at `now` (popped events and
    /// `peek_min` are compared against the reference heap).
    PopReady {
        /// Current cycle.
        now: u64,
    },
}

/// Replays `trace` against both cache implementations; fails on the
/// first access whose hit/miss outcome diverges.
pub fn replay_cache(
    total_bytes: u64,
    assoc: u32,
    line_bytes: u32,
    trace: &[u64],
) -> Result<(), CheckFailure> {
    let mut flat = Cache::new(total_bytes, assoc, line_bytes);
    let mut map = MapCache::new(total_bytes, assoc, line_bytes);
    for (i, &addr) in trace.iter().enumerate() {
        let got = flat.access_line(addr);
        let want = map.access_line(addr);
        if got != want {
            return Err(CheckFailure::new(
                "cache",
                format!(
                    "access {i} (addr {addr:#x}, geometry {total_bytes}B/{assoc}-way/\
                     {line_bytes}B lines): flat cache {got}, map oracle {want}"
                ),
            ));
        }
    }
    Ok(())
}

/// Replays `ops` against both MSHR implementations; fails on the first
/// lookup whose merge outcome or completion cycle diverges.
pub fn replay_mshr(capacity: usize, ops: &[MshrOp]) -> Result<(), CheckFailure> {
    let mut flat = Mshr::new(capacity);
    let mut map = MapMshr::new(capacity);
    for (i, &op) in ops.iter().enumerate() {
        match op {
            MshrOp::Lookup { line, now } => {
                let got = flat.lookup(line, now);
                let want = map.lookup(line, now);
                if got != want {
                    return Err(CheckFailure::new(
                        "mshr",
                        format!(
                            "op {i} lookup(line {line}, now {now}) with {capacity} slots: \
                             slotted table {got:?}, map oracle {want:?}"
                        ),
                    ));
                }
            }
            MshrOp::Insert { line, done, now } => {
                flat.insert(line, done, now);
                map.insert(line, done, now);
            }
        }
    }
    Ok(())
}

/// Replays `ops` against the bucketed calendar and the reference heap;
/// fails on the first pop or `peek_min` that diverges.
pub fn replay_calendar(ops: &[CalendarOp]) -> Result<(), CheckFailure> {
    let mut cal: EventCalendar<u64> = EventCalendar::new();
    let mut heap = HeapCalendar::new();
    for (i, &op) in ops.iter().enumerate() {
        match op {
            CalendarOp::Push { cycle, payload } => {
                cal.push(cycle, payload);
                heap.push(cycle, payload);
            }
            CalendarOp::PopReady { now } => {
                let got = cal.pop_ready(now);
                let want = heap.pop_ready(now);
                if got != want {
                    return Err(CheckFailure::new(
                        "calendar",
                        format!("op {i} pop_ready({now}): calendar {got:?}, heap oracle {want:?}"),
                    ));
                }
            }
        }
        if cal.peek_min() != heap.peek_min() || cal.len() != heap.len() {
            return Err(CheckFailure::new(
                "calendar",
                format!(
                    "op {i}: calendar (min {:?}, len {}) vs heap oracle (min {:?}, len {})",
                    cal.peek_min(),
                    cal.len(),
                    heap.peek_min(),
                    heap.len()
                ),
            ));
        }
    }
    Ok(())
}

/// Checks the BVH reference traversal against brute force over the
/// triangle soup for every ray; fails on the first disagreement on hit
/// existence, triangle identity, or hit distance (beyond a small
/// floating-point tolerance).
pub fn bvh_vs_brute_force(image: &BvhImage, rays: &[Ray]) -> Result<(), CheckFailure> {
    for (i, ray) in rays.iter().enumerate() {
        let bvh = traverse::closest_hit(image, ray, f32::INFINITY);
        let brute = traverse::brute_force_closest_hit(image, ray, f32::INFINITY);
        let agree = match (bvh, brute) {
            (None, None) => true,
            (Some(a), Some(b)) => a.triangle == b.triangle && (a.t - b.t).abs() < 1e-4,
            _ => false,
        };
        if !agree {
            return Err(CheckFailure::new(
                "bvh",
                format!(
                    "ray {i} (orig {:?}, dir {:?}): bvh {bvh:?} vs brute force {brute:?}",
                    ray.orig, ray.dir
                ),
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn cache_replay_agrees_on_mixed_traces() {
        let mut rng = StdRng::seed_from_u64(11);
        let trace: Vec<u64> = (0..5_000)
            .map(|_| rng.random_range(0u64..64 * 1024))
            .collect();
        replay_cache(16 * 1024, 4, 64, &trace).unwrap();
        replay_cache(4 * 1024, 0, 128, &trace).unwrap();
    }

    #[test]
    fn mshr_replay_agrees_under_pressure() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut now = 0u64;
        let ops: Vec<MshrOp> = (0..4_000)
            .map(|_| {
                now += rng.random_range(0u64..8);
                let line = rng.random_range(0u64..32);
                if rng.random_range(0u32..3) == 0 {
                    MshrOp::Insert {
                        line,
                        done: now + rng.random_range(1u64..400),
                        now,
                    }
                } else {
                    MshrOp::Lookup { line, now }
                }
            })
            .collect();
        replay_mshr(4, &ops).unwrap(); // saturated: eviction path exercised
        replay_mshr(64, &ops).unwrap(); // roomy: pure merge/expiry path
    }

    #[test]
    fn calendar_replay_agrees_on_bursty_schedules() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut now = 0u64;
        let ops: Vec<CalendarOp> = (0..10_000)
            .map(|_| {
                now += rng.random_range(0u64..30);
                if rng.random_range(0u32..3) == 0 {
                    CalendarOp::PopReady { now }
                } else {
                    CalendarOp::Push {
                        cycle: now + rng.random_range(1u64..3_000),
                        payload: rng.random_range(0u64..1 << 32),
                    }
                }
            })
            .collect();
        replay_calendar(&ops).unwrap();
    }

    #[test]
    fn a_lying_oracle_is_reported() {
        // Sanity-check the failure path itself: an MSHR trace replayed
        // with *different* capacities must diverge (the small table
        // evicts, the large one merges).
        let ops = [
            MshrOp::Insert {
                line: 1,
                done: 500,
                now: 0,
            },
            MshrOp::Insert {
                line: 2,
                done: 600,
                now: 0,
            },
            MshrOp::Insert {
                line: 3,
                done: 700,
                now: 0,
            },
            MshrOp::Lookup { line: 1, now: 10 },
        ];
        // Same capacity: both evict line 1 identically -> clean.
        replay_mshr(2, &ops).unwrap();
        replay_mshr(8, &ops).unwrap();
    }
}
