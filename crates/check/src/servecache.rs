//! The result-cache identity oracle.
//!
//! `cooprt-serve` promises that a result-cache hit returns bytes
//! bitwise identical to a fresh run of the same job. This oracle fuzzes
//! that promise end to end through the production [`Executor`] — no
//! sockets, exactly the code path the server's workers run:
//!
//! 1. sample a `(scene, config, policy, spp)` job from a seed (small
//!    frames — this runs the full cycle-level simulator);
//! 2. execute it twice on one executor: the second run must be a cache
//!    hit with identical bytes;
//! 3. execute it on a *fresh* executor under a different request id:
//!    the body must still be identical (the fresh-run bytes themselves
//!    are deterministic, and request ids never leak into bodies);
//! 4. parse the body and spot-check the echoed job fields.

use crate::CheckFailure;
use cooprt_serve::{ConfigPreset, Endpoint, Executor, JobRequest};
use cooprt_telemetry::parse_json;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Samples a small serve job from `seed`.
///
/// Frames are tiny (the simulator is cycle-level) but every axis of the
/// canonical key varies: scene, detail, dimensions, spp, shader,
/// policy, reorder policy, predict policy, config preset, and the
/// body-shape options.
pub fn job_from_seed(seed: u64) -> (Endpoint, JobRequest) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7365_7276_6563_6163); // "servecac"
    let scenes = cooprt_scenes::ALL_SCENES;
    let endpoint = [Endpoint::Render, Endpoint::Simulate][rng.random_range(0usize..2)];
    let config = match rng.random_range(0usize..3) {
        0 => ConfigPreset::Rtx2060,
        1 => ConfigPreset::Mobile,
        _ => ConfigPreset::Small(rng.random_range(1usize..4)),
    };
    let request = JobRequest {
        scene: scenes[rng.random_range(0usize..scenes.len())],
        detail: rng.random_range(1u32..3),
        width: rng.random_range(4usize..13),
        height: rng.random_range(4usize..13),
        spp: rng.random_range(1u32..4),
        shader: [
            cooprt_core::ShaderKind::PathTrace,
            cooprt_core::ShaderKind::AmbientOcclusion,
            cooprt_core::ShaderKind::Shadow,
        ][rng.random_range(0usize..3)],
        policy: [
            cooprt_core::TraversalPolicy::Baseline,
            cooprt_core::TraversalPolicy::CoopRt,
        ][rng.random_range(0usize..2)],
        reorder: cooprt_core::ReorderPolicy::ALL[rng.random_range(0usize..3)],
        predict: cooprt_core::PredictPolicy::ALL[rng.random_range(0usize..2)],
        config,
        include_image: rng.random(),
        trace: rng.random(),
        run_async: false,
        deadline_ms: None,
    };
    (endpoint, request)
}

/// Replays one seed through the identity oracle.
pub fn run_serve_seed(seed: u64) -> Result<(), CheckFailure> {
    let (endpoint, request) = job_from_seed(seed);
    let label = format!(
        "seed {seed}: {} {}",
        endpoint.label(),
        request.canonical_key()
    );
    let fail = |detail: String| CheckFailure::new("serve-cache", detail);

    let exec = Executor::new(2, 4);
    let fresh = exec
        .execute(endpoint, &request, seed)
        .map_err(|e| fail(format!("{label}: fresh run failed: {e}")))?;
    if fresh.cached {
        return Err(fail(format!("{label}: first run reported as cached")));
    }
    let hit = exec
        .execute(endpoint, &request, seed.wrapping_add(1))
        .map_err(|e| fail(format!("{label}: repeat run failed: {e}")))?;
    if !hit.cached {
        return Err(fail(format!("{label}: repeat run missed the cache")));
    }
    if *hit.body != *fresh.body {
        return Err(fail(format!(
            "{label}: cache hit diverged from the fresh run ({} vs {} bytes)",
            hit.body.len(),
            fresh.body.len()
        )));
    }

    // A brand-new executor (cold caches, different request id) must
    // still produce the same bytes: fresh runs are deterministic.
    let other = Executor::new(2, 4)
        .execute(endpoint, &request, seed.wrapping_mul(0x9e37_79b9))
        .map_err(|e| fail(format!("{label}: independent run failed: {e}")))?;
    if *other.body != *fresh.body {
        return Err(fail(format!(
            "{label}: independent executor diverged from the fresh run"
        )));
    }

    // The body must be valid JSON echoing the job's identity.
    let text = std::str::from_utf8(&fresh.body)
        .map_err(|_| fail(format!("{label}: body is not UTF-8")))?;
    let doc =
        parse_json(text).map_err(|e| fail(format!("{label}: body is not valid JSON: {e}")))?;
    for (field, want) in [
        ("kind", endpoint.label().to_string()),
        ("scene", request.scene.name().to_string()),
        ("policy", request.policy.label().to_string()),
        ("config", request.config.label()),
    ] {
        let got = doc.get(field).and_then(|v| v.as_str());
        if got != Some(want.as_str()) {
            return Err(fail(format!(
                "{label}: body field '{field}' is {got:?}, expected {want:?}"
            )));
        }
    }
    Ok(())
}

/// Runs `count` consecutive seeds starting at `start`; returns the
/// number run.
pub fn run_serve_budget(start: u64, count: u64) -> Result<u64, CheckFailure> {
    for seed in start..start + count {
        run_serve_seed(seed).map_err(|f| {
            CheckFailure::new(
                f.oracle.clone(),
                format!("{} (replay: simcheck --serve-seed {seed})", f.detail),
            )
        })?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_are_deterministic_per_seed() {
        assert_eq!(job_from_seed(42), job_from_seed(42));
        assert_ne!(job_from_seed(1).1, job_from_seed(2).1);
    }

    #[test]
    fn a_small_seed_budget_passes() {
        assert_eq!(run_serve_budget(0, 2).unwrap(), 2);
    }
}
