//! Ray-reordering differential oracle.
//!
//! The reorder subsystem (`cooprt_core::reorder`) claims two identities,
//! and this module fuzzes both from a [`FuzzCase`]:
//!
//! 1. **Reordering is timing-only** — a frame run with any
//!    [`ReorderPolicy`] renders bitwise the same image as the unordered
//!    run, under both traversal policies and with warp compaction on or
//!    off. Sorting changes *which rays share a warp*, never what any
//!    ray computes.
//! 2. **Keys and buckets are deterministic** — `ray_key` and
//!    `bucket_of` are pure functions of the ray and the scene bounds,
//!    so computing them under different outer-parallelism widths
//!    (`par_map` with 1, 2 and 4 workers) yields bitwise identical key
//!    streams, and the counting sort over those streams yields the same
//!    permutation.
//!
//! Failing cases shrink through the same [`shrink`](crate::shrink)
//! pipeline as the simulator oracles and report a
//! `simcheck -- --reorder-seed N` replay command.

use crate::fuzz::FuzzCase;
use crate::{shrink, CheckFailure};
use cooprt_core::reorder::{bucket_of, ray_key, reorder_by_key};
use cooprt_core::{parallel, ReorderPolicy, Simulation, TraversalPolicy, DEFAULT_REORDER_BUCKETS};
use cooprt_math::{Ray, Rgb, Vec3};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::fmt;

fn bits(c: &Rgb) -> [u32; 3] {
    [c.r.to_bits(), c.g.to_bits(), c.b.to_bits()]
}

/// Identity 1: every reorder policy renders the unordered image
/// bitwise, under both traversal policies, with and without compaction.
fn image_identity(case: &FuzzCase) -> Result<(), CheckFailure> {
    let scene = case.scene();
    for compaction in [false, true] {
        for policy in [TraversalPolicy::Baseline, TraversalPolicy::CoopRt] {
            let mut cfg = case.gpu_config();
            cfg.compaction = compaction;
            let reference = Simulation::new(&scene, &cfg, policy)
                .run_frame(case.shader, case.width, case.height)
                .map_err(|e| CheckFailure::new("engine", format!("unordered {policy:?}: {e}")))?;
            for reorder in [ReorderPolicy::Morton, ReorderPolicy::OctantHash] {
                let cfg = cfg.clone().with_reorder(reorder);
                let run = Simulation::new(&scene, &cfg, policy)
                    .run_frame(case.shader, case.width, case.height)
                    .map_err(|e| {
                        CheckFailure::new("engine", format!("{reorder:?} {policy:?}: {e}"))
                    })?;
                for (i, (a, b)) in reference.image.iter().zip(run.image.iter()).enumerate() {
                    if bits(a) != bits(b) {
                        return Err(CheckFailure::new(
                            "reorder-image",
                            format!(
                                "{reorder:?} under {policy:?} (compaction {compaction}): \
                                 pixel {i} differs (unordered {a:?}, reordered {b:?})"
                            ),
                        ));
                    }
                }
                if run.rays != reference.rays {
                    return Err(CheckFailure::new(
                        "reorder-image",
                        format!(
                            "{reorder:?} under {policy:?} (compaction {compaction}): \
                             {} rays traced, unordered traced {}",
                            run.rays, reference.rays
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Identity 2: keys, buckets and the sort permutation are bitwise
/// reproducible at any outer-parallelism width.
fn key_determinism(case: &FuzzCase) -> Result<(), CheckFailure> {
    let scene = case.scene();
    let bounds = scene.image.root_bounds();
    // Synthesize a deterministic ray soup spanning the scene: origins
    // inside the root bounds, directions over the whole sphere.
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x5eed_50f7);
    let span = bounds.max - bounds.min;
    let rays: Vec<Ray> = (0..256)
        .map(|_| {
            let o = bounds.min
                + Vec3::new(
                    span.x * rng.random::<f32>(),
                    span.y * rng.random::<f32>(),
                    span.z * rng.random::<f32>(),
                );
            let d = Vec3::new(
                rng.random::<f32>() * 2.0 - 1.0,
                rng.random::<f32>() * 2.0 - 1.0,
                rng.random::<f32>() * 2.0 - 1.0,
            );
            let d = if d.length() > 1e-3 { d } else { Vec3::Y };
            Ray::new(o, d)
        })
        .collect();
    for policy in [ReorderPolicy::Morton, ReorderPolicy::OctantHash] {
        let reference: Vec<u64> = rays.iter().map(|r| ray_key(policy, r, &bounds)).collect();
        for workers in [1usize, 2, 4] {
            let keys = parallel::par_map(&rays, workers, |_, r| ray_key(policy, r, &bounds));
            if keys != reference {
                let i = keys.iter().zip(&reference).position(|(a, b)| a != b);
                return Err(CheckFailure::new(
                    "reorder-determinism",
                    format!("{policy:?} keys diverge at {workers} workers (first at ray {i:?})"),
                ));
            }
        }
        // The bucket map and the sort permutation follow the keys.
        let threads: Vec<u32> = (0..rays.len() as u32).collect();
        let (order_a, stats_a) =
            reorder_by_key(&threads, DEFAULT_REORDER_BUCKETS, |t| reference[t as usize]);
        let (order_b, stats_b) =
            reorder_by_key(&threads, DEFAULT_REORDER_BUCKETS, |t| reference[t as usize]);
        if order_a != order_b || stats_a != stats_b {
            return Err(CheckFailure::new(
                "reorder-determinism",
                format!("{policy:?}: two identical sorts disagreed"),
            ));
        }
        for (i, w) in order_a.windows(2).enumerate() {
            let (a, b) = (
                bucket_of(reference[w[0] as usize], DEFAULT_REORDER_BUCKETS),
                bucket_of(reference[w[1] as usize], DEFAULT_REORDER_BUCKETS),
            );
            if a > b {
                return Err(CheckFailure::new(
                    "reorder-determinism",
                    format!(
                        "{policy:?}: sorted position {i} is bucket {a}, position {} is {b}",
                        i + 1
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Runs the reorder differential over one case; `Ok` when both
/// identities hold.
pub fn run_reorder_case(case: &FuzzCase) -> Result<(), CheckFailure> {
    image_identity(case)?;
    key_determinism(case)
}

/// A reorder fuzz failure: the seed, the original divergence, and the
/// shrunk reproduction.
#[derive(Clone, Debug)]
pub struct ReorderFailure {
    /// Seed whose case failed.
    pub seed: u64,
    /// Divergence reported by the original (unshrunk) case.
    pub original: CheckFailure,
    /// The minimized case that still fails.
    pub minimized: FuzzCase,
    /// Divergence reported by the minimized case.
    pub minimized_failure: CheckFailure,
}

impl fmt::Display for ReorderFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reorder seed {:#x} ({}) FAILED: {}",
            self.seed, self.seed, self.original
        )?;
        writeln!(f, "minimized repro: {}", self.minimized)?;
        writeln!(f, "minimized failure: {}", self.minimized_failure)?;
        write!(
            f,
            "replay with: cargo run --release --example simcheck -- --reorder-seed {}",
            self.seed
        )
    }
}

/// Runs one seed through the reorder differential; on divergence the
/// case is shrunk before reporting.
pub fn run_reorder_seed(seed: u64) -> Result<(), Box<ReorderFailure>> {
    let case = FuzzCase::from_seed(seed);
    match run_reorder_case(&case) {
        Ok(()) => Ok(()),
        Err(original) => {
            let (minimized, minimized_failure) = shrink::shrink(&case, run_reorder_case);
            Err(Box::new(ReorderFailure {
                seed,
                original,
                minimized,
                minimized_failure,
            }))
        }
    }
}

/// Runs `count` consecutive reorder seeds starting at `start`; stops at
/// the first failure. Returns the number of seeds that passed.
pub fn run_reorder_budget(start: u64, count: u64) -> Result<u64, Box<ReorderFailure>> {
    for i in 0..count {
        run_reorder_seed(start + i)?;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_reorder_seeds_pass() {
        // CI runs a larger budget in release; keep the in-crate smoke
        // cheap (each seed runs twelve tiny frames).
        if let Err(failure) = run_reorder_budget(0, 2) {
            panic!("{failure}");
        }
    }

    #[test]
    fn key_determinism_holds_on_its_own() {
        let case = FuzzCase::from_seed(7);
        key_determinism(&case).unwrap();
    }
}
