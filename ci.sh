#!/usr/bin/env bash
# Local CI: formatting, lints, release build, full test suite.
# The workspace has no external dependencies, so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --quiet --workspace

echo "==> simcheck --seeds 64 (differential fuzzing smoke)"
cargo run --offline --release --example simcheck -- \
    --seeds 64 --json-seeds 256 --serve-seeds 8 --trace-seeds 8 --reorder-seeds 8 \
    --predict-seeds 8 --query-seeds 8

echo "==> simperf --smoke"
cargo bench --offline -p cooprt-bench --bench simperf -- --smoke

echo "==> query smoke (spatial queries on the RT unit, oracle-exact)"
# Every run checks the simulated answers against the brute-force
# oracle; --compare additionally asserts baseline and CoopRT agree.
cargo run --offline --release --bin cooprt -- query qclu \
    --shader rad --detail 8 --count 256 --compare
cargo run --offline --release --bin cooprt -- query qamr \
    --detail 8 --count 256

echo "==> serve smoke (HTTP service end to end, observability asserts)"
# Besides the render/cache identity checks, serve --smoke validates the
# Prometheus exposition with the in-tree validator, fetches a request
# span trail as Chrome trace JSON, and asserts every captured
# structured-log line parses with the in-tree JSON parser.
cargo run --offline --release --bin cooprt -- serve --smoke

echo "==> loadgen --smoke (service throughput harness)"
cargo run --offline --release --example loadgen -- --smoke

echo "==> benchdiff (perf-regression soft gate)"
# Compares the checked-in BENCH reports against ci/bench_baseline.json.
# Soft gate: wall-clock metrics vary across hardware, so regressions
# warn rather than fail; re-pin with `--write-baseline` when the change
# is intentional.
if ! cargo bench --offline -p cooprt-bench --bench benchdiff; then
    echo "WARN: benchdiff reported regressions against ci/bench_baseline.json (soft gate)"
fi

echo "==> telemetry smoke (trace_export --check)"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run --offline --release --example trace_export -- \
    --scene wknd --policy cooprt --res 32 --detail 8 \
    --out-dir "$smoke_dir" --check
test -s "$smoke_dir/wknd_cooprt.trace.json"
test -s "$smoke_dir/wknd_cooprt.metrics.json"

echo "==> trace record/replay smoke (record once, replay --verify)"
cargo run --offline --release --bin cooprt -- trace record wknd \
    --res 32 --detail 4 --out "$smoke_dir/wknd.cprt"
cargo run --offline --release --bin cooprt -- trace info "$smoke_dir/wknd.cprt"
cargo run --offline --release --bin cooprt -- trace replay "$smoke_dir/wknd.cprt" \
    --policy cooprt --verify
cargo run --offline --release --bin cooprt -- trace replay "$smoke_dir/wknd.cprt" \
    --policy cooprt --reorder morton --verify

echo "CI green."
