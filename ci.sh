#!/usr/bin/env bash
# Local CI: formatting, lints, release build, full test suite.
# The workspace has no external dependencies, so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --offline --release --workspace

echo "==> cargo test"
cargo test --offline --quiet --workspace

echo "==> simperf --smoke"
cargo bench --offline -p cooprt-bench --bench simperf -- --smoke

echo "CI green."
